#include "src/snapshot/writer.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/resilience/protection.hpp"
#include "src/snapshot/wire.hpp"
#include "src/util/check.hpp"
#include "src/util/hash.hpp"

namespace af {
namespace {

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

void put_name(std::vector<std::uint8_t>& out, const std::string& name) {
  AF_CHECK(!name.empty() && name.size() < kMaxNameBytes,
           "section name must be 1.." + std::to_string(kMaxNameBytes - 1) +
               " bytes: '" + name + "'");
  for (char c : name) out.push_back(static_cast<std::uint8_t>(c));
  out.resize(out.size() + (kMaxNameBytes - name.size()), 0);
}

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void SnapshotWriter::add_packed(const std::string& name,
                                const PackedAdaptivFloatTensor& t,
                                int block_words) {
  const auto count = static_cast<std::size_t>(t.numel());
  // The sidecar is computed over the code words the payload actually
  // carries, so writer-side quantization and a re-packed stream agree.
  add_codes(name, FormatKind::kAdaptivFloat, t.format().bits(),
            t.format().exp_bits(), t.format().exp_bias(),
            /*max_abs=*/t.format().value_max(), t.shape(),
            unpack_codes(t.data(), t.payload_bytes(), t.format().bits(), count),
            block_words);
}

void SnapshotWriter::add_codes(const std::string& name, FormatKind format,
                               int bits, int exp_bits, int exp_bias,
                               float max_abs, const Shape& shape,
                               const std::vector<std::uint16_t>& codes,
                               int block_words) {
  AF_CHECK(bits >= 1 && bits <= 8,
           "snapshot v1 stores code words of at most 8 bits (the additive "
           "checksum sidecar reconstructs at byte width)");
  AF_CHECK(block_words >= 1, "block size must be positive");
  AF_CHECK(static_cast<std::uint64_t>(numel_of(shape)) == codes.size(),
           "code count does not match the declared shape");
  AF_CHECK(shape.size() <= kMaxRank, "snapshot sections are rank <= 4");

  PendingSection s;
  s.desc.name = name;
  s.desc.kind = SectionKind::kPackedCodes;
  s.desc.format = format;
  s.desc.bits = bits;
  s.desc.exp_bits = exp_bits;
  s.desc.exp_bias = exp_bias;
  s.desc.max_abs = max_abs;
  s.desc.shape = shape;
  s.desc.count = codes.size();
  s.desc.block_words = block_words;
  s.payload = pack_codes(codes, bits);
  // Sidecar: PR-1 parity bits, then the per-block additive checksums.
  s.sidecar = build_parity_sidecar(codes);
  const auto sums = build_checksum_sidecar(codes, block_words);
  s.sidecar.insert(s.sidecar.end(), sums.begin(), sums.end());
  add_section(std::move(s));
}

void SnapshotWriter::add_fp32(const std::string& name, const Tensor& t) {
  AF_CHECK(t.shape().size() <= kMaxRank, "snapshot sections are rank <= 4");
  PendingSection s;
  s.desc.name = name;
  s.desc.kind = SectionKind::kFloat32;
  s.desc.format = FormatKind::kAdaptivFloat;  // unused for fp32
  s.desc.bits = 32;
  s.desc.exp_bits = -1;
  s.desc.exp_bias = 0;
  s.desc.max_abs = t.max_abs();
  s.desc.shape = t.shape();
  s.desc.count = static_cast<std::uint64_t>(t.numel());
  s.desc.block_words = 0;
  s.payload.resize(static_cast<std::size_t>(t.numel()) * sizeof(float));
  std::memcpy(s.payload.data(), t.data(), s.payload.size());
  add_section(std::move(s));
}

void SnapshotWriter::add_section(PendingSection section) {
  for (const PendingSection& existing : sections_) {
    AF_CHECK(existing.desc.name != section.desc.name,
             "duplicate snapshot section name: '" + section.desc.name + "'");
  }
  sections_.push_back(std::move(section));
}

std::vector<std::uint8_t> SnapshotWriter::serialize() const {
  // Pass 1: lay out payloads and sidecars after the TOC, 64-byte aligned.
  const std::size_t toc_bytes = sections_.size() * kTocEntryBytes;
  std::size_t cursor = align_up(kHeaderBytes + toc_bytes, kSectionAlign);
  std::vector<SectionDescriptor> descs;
  descs.reserve(sections_.size());
  for (const PendingSection& s : sections_) {
    SectionDescriptor d = s.desc;
    d.payload_offset = cursor;
    d.payload_bytes = s.payload.size();
    d.payload_crc = crc32(s.payload.data(), s.payload.size());
    cursor = align_up(cursor + s.payload.size(), kSectionAlign);
    if (!s.sidecar.empty()) {
      d.sidecar_offset = cursor;
      d.sidecar_bytes = s.sidecar.size();
      d.sidecar_crc = crc32(s.sidecar.data(), s.sidecar.size());
      cursor = align_up(cursor + s.sidecar.size(), kSectionAlign);
    }
    descs.push_back(std::move(d));
  }
  const std::size_t file_bytes = cursor;

  // Pass 2: emit. TOC first (its CRC lands in the header).
  std::vector<std::uint8_t> toc;
  toc.reserve(toc_bytes);
  for (const SectionDescriptor& d : descs) {
    const std::size_t entry_start = toc.size();
    put_name(toc, d.name);
    toc.push_back(static_cast<std::uint8_t>(d.kind));
    toc.push_back(static_cast<std::uint8_t>(d.format));
    toc.push_back(static_cast<std::uint8_t>(d.bits));
    toc.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(
        d.exp_bits)));
    wire::put_i32(toc, d.exp_bias);
    wire::put_f32(toc, d.max_abs);
    wire::put_u32(toc, static_cast<std::uint32_t>(d.shape.size()));
    for (std::size_t r = 0; r < kMaxRank; ++r) {
      wire::put_i64(toc, r < d.shape.size() ? d.shape[r] : 0);
    }
    wire::put_u64(toc, d.count);
    wire::put_u64(toc, d.payload_offset);
    wire::put_u64(toc, d.payload_bytes);
    wire::put_u32(toc, d.payload_crc);
    wire::put_u32(toc, static_cast<std::uint32_t>(d.block_words));
    wire::put_u64(toc, d.sidecar_offset);
    wire::put_u64(toc, d.sidecar_bytes);
    wire::put_u32(toc, d.sidecar_crc);
    wire::put_u32(toc, 0);  // reserved
    AF_CHECK(toc.size() - entry_start == kTocEntryBytes,
             "TOC entry serialization drifted from kTocEntryBytes");
  }

  std::vector<std::uint8_t> out;
  out.reserve(file_bytes);
  for (char c : kSnapshotMagic) out.push_back(static_cast<std::uint8_t>(c));
  wire::put_u32(out, kSnapshotVersion);
  wire::put_u32(out, kEndianTag);
  wire::put_u64(out, sections_.size());
  wire::put_u64(out, file_bytes);
  wire::put_u64(out, kHeaderBytes);
  wire::put_u64(out, toc_bytes);
  wire::put_u32(out, crc32(toc.data(), toc.size()));
  wire::put_u32(out, crc32(out.data(), out.size()));  // header_crc over [0,52)
  wire::put_u64(out, 0);  // reserved
  AF_CHECK(out.size() == kHeaderBytes, "header serialization drifted");

  out.insert(out.end(), toc.begin(), toc.end());
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    out.resize(descs[i].payload_offset, 0);
    out.insert(out.end(), sections_[i].payload.begin(),
               sections_[i].payload.end());
    if (!sections_[i].sidecar.empty()) {
      out.resize(descs[i].sidecar_offset, 0);
      out.insert(out.end(), sections_[i].sidecar.begin(),
                 sections_[i].sidecar.end());
    }
  }
  out.resize(file_bytes, 0);
  return out;
}

void SnapshotWriter::write(const std::string& path) const {
  atomic_write_file(path, serialize());
}

void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  AF_CHECK(fd >= 0, "cannot create '" + tmp + "': " + std::strerror(errno));

  bool ok = true;
  std::string err;
  std::size_t done = 0;
  while (ok && done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      err = std::strerror(errno);
    } else {
      done += static_cast<std::size_t>(n);
    }
  }
  // The fsync before rename is the crash-safety linchpin: the data must be
  // durable before the name flips, or a power cut could publish a file
  // whose tail pages were never written.
  if (ok && ::fsync(fd) != 0) {
    ok = false;
    err = std::strerror(errno);
  }
  ::close(fd);
  if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
    ok = false;
    err = std::strerror(errno);
  }
  if (!ok) {
    ::unlink(tmp.c_str());
    fail("atomic write of '" + path + "' failed: " + err);
  }
  // Persist the rename itself. Failure here is not fatal to correctness of
  // the content (the rename is atomic either way); ignore errors from
  // filesystems that reject directory fsync.
  const int dfd = ::open(dirname_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace af
