// On-disk fault-injection campaign for the snapshot container.
//
// This is the storage mirror of the PR-3 inference fault campaign: instead
// of upsetting PE datapaths, it drives the seeded FaultInjector over the
// serialized file image (the raw-span overload working on bytes at rest),
// writes each corrupted image to disk, and exercises the full
// MappedSnapshot load path — mmap, CRC verification, sidecar repair,
// scrub-to-zero — exactly as a serving process would experience bit rot.
// Every trial is classified, and repaired sections are re-checked against
// the pristine code words, so "repaired" in the result really means
// bit-exact, not merely CRC-plausible. Deterministic per seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/fault.hpp"

namespace af {

struct SnapshotCampaignConfig {
  /// Per-bit flip probability applied to the targeted bytes.
  double bit_error_rate = 1e-6;
  int trials = 32;
  std::uint64_t seed = 0x5eedf11e;
  RecoveryPolicy policy = RecoveryPolicy::kDegradeToZero;
  /// true: target only section payloads (the SRAM weight-store model,
  /// matching the PR-1 in-memory campaigns). false: the whole file image,
  /// header and TOC included — exercising the fail-closed paths.
  bool payload_only = true;
};

struct SnapshotCampaignResult {
  int trials = 0;
  int clean = 0;          ///< no flip landed, or none survived to a section
  int repaired = 0;       ///< sidecar repair restored every hit section
  int degraded = 0;       ///< at least one section scrubbed under the policy
  int failed_closed = 0;  ///< load refused with a typed FaultError
  /// Repaired sections whose code words differ from the pristine snapshot.
  /// The container's bit-exactness claim is precisely that this stays 0.
  int repair_mismatches = 0;
  std::int64_t bits_flipped = 0;
  std::int64_t words_repaired = 0;
  std::int64_t words_zeroed = 0;
};

/// Runs `cfg.trials` corrupt-write-load trials of `image` (a serialized
/// snapshot, e.g. SnapshotWriter::serialize()). `scratch_path` is a
/// writable file path the campaign may overwrite freely. Never throws for
/// in-campaign faults — refusals are counted in `failed_closed`.
SnapshotCampaignResult run_snapshot_fault_campaign(
    const std::vector<std::uint8_t>& image, const std::string& scratch_path,
    const SnapshotCampaignConfig& cfg);

}  // namespace af
