#include "src/snapshot/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/resilience/protection.hpp"
#include "src/snapshot/wire.hpp"
#include "src/util/check.hpp"
#include "src/util/hash.hpp"

namespace af {

struct MappedSnapshot::Mapping {
  std::uint8_t* base = nullptr;
  std::size_t size = 0;

  ~Mapping() {
    if (base != nullptr) ::munmap(base, size);
  }
};

namespace {

[[noreturn]] void malformed(const std::string& path, const std::string& why) {
  throw FaultError("snapshot:" + path, FaultKind::kMalformedInput, why);
}

/// Attempts sidecar-guided reconstruction of a packed payload whose CRC
/// failed. Works on a scratch copy of the code words; the caller decides
/// what to write back. Returns the blocks that could not be explained.
struct RepairAttempt {
  std::vector<std::uint16_t> codes;       ///< post-repair code words
  std::vector<std::size_t> bad_blocks;    ///< unexplained block indices
  std::int64_t words_repaired = 0;
};

RepairAttempt attempt_repair(const std::uint8_t* payload,
                             const SectionDescriptor& d,
                             const std::uint8_t* parity,
                             const std::uint8_t* checksums) {
  RepairAttempt r;
  const auto count = static_cast<std::size_t>(d.count);
  r.codes = unpack_codes(payload, static_cast<std::size_t>(d.payload_bytes),
                         d.bits, count, StrayBits::kMask);
  const std::size_t bw = static_cast<std::size_t>(d.block_words);
  const std::size_t blocks = count == 0 ? 0 : (count + bw - 1) / bw;
  const std::uint16_t code_limit = static_cast<std::uint16_t>(1u << d.bits);

  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * bw;
    const std::size_t end = std::min(count, begin + bw);

    std::vector<std::size_t> flagged;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint8_t stored = (parity[i >> 3] >> (i & 7)) & 1u;
      if (code_word_parity(r.codes[i]) != stored) flagged.push_back(i);
    }
    const bool sum_ok =
        code_block_checksum(r.codes, begin, end) == checksums[b];

    if (flagged.empty()) {
      // Nothing localized. A matching checksum means this block is clean
      // (any corruption confined to one word always moves the additive
      // sum: distinct powers of two cannot cancel mod 256). A mismatch
      // with no parity flag hides an even number of flips in one word —
      // detectable, not localizable.
      if (!sum_ok) r.bad_blocks.push_back(b);
      continue;
    }
    if (flagged.size() > 1 || sum_ok) {
      // Two corrupt words (or a parity flag the checksum cannot see,
      // which implies corruption beyond one word) — beyond the sidecar's
      // single-fault reconstruction power.
      r.bad_blocks.push_back(b);
      continue;
    }

    // Exactly one flagged word and a disagreeing checksum: reconstruct
    // the word as stored_sum minus the sum of its intact neighbours.
    const std::size_t w = flagged.front();
    std::uint32_t others = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (i != w) others += r.codes[i] & 0xffu;  // bits <= 8: high byte 0
    }
    const auto rebuilt = static_cast<std::uint16_t>(
        (static_cast<std::uint32_t>(checksums[b]) + 256u - (others & 0xffu)) &
        0xffu);
    const std::uint8_t stored_parity = (parity[w >> 3] >> (w & 7)) & 1u;
    if (rebuilt >= code_limit || code_word_parity(rebuilt) != stored_parity) {
      r.bad_blocks.push_back(b);  // reconstruction inconsistent — wider fault
      continue;
    }
    r.codes[w] = rebuilt;
    ++r.words_repaired;
  }
  return r;
}

}  // namespace

const char* section_outcome_name(SectionOutcome outcome) {
  switch (outcome) {
    case SectionOutcome::kClean: return "clean";
    case SectionOutcome::kRepaired: return "repaired";
    case SectionOutcome::kDegraded: return "degraded";
  }
  return "unknown";
}

MappedSnapshot MappedSnapshot::open(const std::string& path,
                                    SnapshotLoadOptions opts) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    malformed(path, std::string("cannot open: ") + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    malformed(path, "cannot stat: " + err);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    malformed(path, "file shorter than the snapshot header (truncated?)");
  }
  // MAP_PRIVATE + PROT_WRITE: repair/scrub touch only this process's
  // copy-on-write pages; the file and other processes' mappings are never
  // modified, and clean pages stay physically shared.
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE,
                      fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    malformed(path, std::string("mmap failed: ") + std::strerror(errno));
  }

  MappedSnapshot snap;
  snap.map_ = std::make_shared<Mapping>();
  snap.map_->base = static_cast<std::uint8_t*>(base);
  snap.map_->size = size;
  std::uint8_t* p = snap.map_->base;

  // ----- header: every violation fails closed ------------------------------
  if (std::memcmp(p, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    malformed(path, "bad magic (not a snapshot container)");
  }
  const std::uint32_t version = wire::get_u32(p + 8);
  if (version != kSnapshotVersion) {
    malformed(path, "unsupported container version " + std::to_string(version) +
                        " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  if (wire::get_u32(p + 12) != kEndianTag) {
    malformed(path, "endianness tag mismatch (byte-swapped container)");
  }
  if (wire::get_u32(p + 52) != crc32(p, 52)) {
    throw FaultError("snapshot:" + path, FaultKind::kStorageCorruption,
                     "header CRC mismatch — refusing to trust any field");
  }
  const std::uint64_t section_count = wire::get_u64(p + 16);
  const std::uint64_t file_bytes = wire::get_u64(p + 24);
  const std::uint64_t toc_offset = wire::get_u64(p + 32);
  const std::uint64_t toc_bytes = wire::get_u64(p + 40);
  const std::uint32_t toc_crc = wire::get_u32(p + 48);
  if (file_bytes != size) {
    malformed(path, "declared size " + std::to_string(file_bytes) +
                        " != actual " + std::to_string(size) +
                        " (truncated or torn write)");
  }
  if (toc_offset != kHeaderBytes ||
      toc_bytes != section_count * kTocEntryBytes ||
      toc_offset + toc_bytes > size) {
    malformed(path, "TOC geometry out of bounds");
  }
  if (crc32(p + toc_offset, toc_bytes) != toc_crc) {
    throw FaultError("snapshot:" + path, FaultKind::kStorageCorruption,
                     "TOC CRC mismatch — section table untrusted");
  }

  // ----- TOC ----------------------------------------------------------------
  snap.sections_.reserve(section_count);
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const std::uint8_t* e = p + toc_offset + i * kTocEntryBytes;
    SectionDescriptor d;
    const std::size_t name_len =
        ::strnlen(reinterpret_cast<const char*>(e), kMaxNameBytes);
    if (name_len == 0 || name_len == kMaxNameBytes) {
      malformed(path, "TOC entry " + std::to_string(i) + " has a bad name");
    }
    d.name.assign(reinterpret_cast<const char*>(e), name_len);
    const std::uint8_t kind = e[40];
    if (kind > static_cast<std::uint8_t>(SectionKind::kFloat32)) {
      malformed(path, "section '" + d.name + "' has unknown kind");
    }
    d.kind = static_cast<SectionKind>(kind);
    const std::uint8_t format = e[41];
    if (format > static_cast<std::uint8_t>(FormatKind::kAdaptivFloat)) {
      malformed(path, "section '" + d.name + "' has unknown format kind");
    }
    d.format = static_cast<FormatKind>(format);
    d.bits = e[42];
    d.exp_bits = static_cast<std::int8_t>(e[43]);
    d.exp_bias = wire::get_i32(e + 44);
    d.max_abs = wire::get_f32(e + 48);
    const std::uint32_t rank = wire::get_u32(e + 52);
    if (rank > kMaxRank) {
      malformed(path, "section '" + d.name + "' has rank > 4");
    }
    for (std::uint32_t r = 0; r < rank; ++r) {
      d.shape.push_back(wire::get_i64(e + 56 + 8 * r));
    }
    d.count = wire::get_u64(e + 88);
    d.payload_offset = wire::get_u64(e + 96);
    d.payload_bytes = wire::get_u64(e + 104);
    d.payload_crc = wire::get_u32(e + 112);
    d.block_words = static_cast<int>(wire::get_u32(e + 116));
    d.sidecar_offset = wire::get_u64(e + 120);
    d.sidecar_bytes = wire::get_u64(e + 128);
    d.sidecar_crc = wire::get_u32(e + 136);

    if (static_cast<std::uint64_t>(numel_of(d.shape)) != d.count) {
      malformed(path, "section '" + d.name + "' count/shape disagree");
    }
    std::uint64_t expect_payload = 0;
    if (d.kind == SectionKind::kPackedCodes) {
      if (d.bits < 1 || d.bits > 8) {
        malformed(path, "section '" + d.name + "' has bad code width");
      }
      expect_payload = (d.count * static_cast<std::uint64_t>(d.bits) + 7) / 8;
    } else {
      expect_payload = d.count * sizeof(float);
    }
    if (d.payload_bytes != expect_payload ||
        d.payload_offset + d.payload_bytes > size ||
        d.payload_offset < toc_offset + toc_bytes) {
      malformed(path, "section '" + d.name + "' payload out of bounds");
    }
    if (d.has_sidecar()) {
      if (d.kind != SectionKind::kPackedCodes || d.block_words < 1) {
        malformed(path, "section '" + d.name + "' sidecar misdeclared");
      }
      const std::uint64_t bw = static_cast<std::uint64_t>(d.block_words);
      const std::uint64_t expect_sidecar =
          (d.count + 7) / 8 + (d.count + bw - 1) / bw;
      if (d.sidecar_bytes != expect_sidecar ||
          d.sidecar_offset + d.sidecar_bytes > size) {
        malformed(path, "section '" + d.name + "' sidecar out of bounds");
      }
    }
    snap.sections_.push_back(std::move(d));
  }

  // ----- per-section verify → repair → degrade ------------------------------
  for (const SectionDescriptor& d : snap.sections_) {
    SectionLoadReport sr;
    sr.name = d.name;
    std::uint8_t* payload = snap.map_->base + d.payload_offset;

    if (crc32(payload, d.payload_bytes) == d.payload_crc) {
      snap.report_.sections.push_back(std::move(sr));
      ++snap.report_.sections_clean;
      continue;
    }
    if (opts.policy == RecoveryPolicy::kDetect) {
      throw FaultError("snapshot-section:" + d.name,
                       FaultKind::kStorageCorruption,
                       "payload CRC mismatch under detect-only policy");
    }

    // Repair rung: only packed sections with a trustworthy sidecar have a
    // reconstruction avenue.
    bool repaired = false;
    std::vector<std::size_t> bad_blocks;
    if (d.has_sidecar()) {
      const std::uint8_t* sidecar = snap.map_->base + d.sidecar_offset;
      const bool sidecar_ok =
          crc32(sidecar, d.sidecar_bytes) == d.sidecar_crc;
      if (sidecar_ok) {
        const std::uint8_t* parity = sidecar;
        const std::uint8_t* checksums = sidecar + (d.count + 7) / 8;
        RepairAttempt attempt = attempt_repair(payload, d, parity, checksums);
        // Re-packing also clears flipped stray tail bits; the section CRC
        // is the arbiter of bit-exactness.
        std::vector<std::uint8_t> rebuilt = pack_codes(attempt.codes, d.bits);
        if (attempt.bad_blocks.empty() &&
            crc32(rebuilt.data(), rebuilt.size()) == d.payload_crc) {
          std::memcpy(payload, rebuilt.data(), rebuilt.size());
          sr.outcome = SectionOutcome::kRepaired;
          sr.words_repaired = attempt.words_repaired;
          repaired = true;
        } else {
          bad_blocks = std::move(attempt.bad_blocks);
        }
      }
      if (!repaired && !sidecar_ok) bad_blocks.clear();  // nothing localized
    }

    if (repaired) {
      ++snap.report_.sections_repaired;
      snap.report_.words_repaired += sr.words_repaired;
      snap.report_.sections.push_back(std::move(sr));
      continue;
    }
    if (opts.policy != RecoveryPolicy::kDegradeToZero) {
      throw FaultError(
          "snapshot-section:" + d.name, FaultKind::kUncorrectable,
          "payload corruption beyond single-fault sidecar repair");
    }

    // Degrade rung: scrub to the exact-zero code. When the sidecar
    // localized the damage, only those blocks are lost; when nothing
    // localized (multi-word cancellation, sidecar corruption, fp32
    // payload), the whole payload is scrubbed — all-zero bytes decode to
    // exact 0 in every format of the evaluation, so the damage is bounded.
    sr.outcome = SectionOutcome::kDegraded;
    if (!bad_blocks.empty()) {
      auto codes = unpack_codes(payload,
                                static_cast<std::size_t>(d.payload_bytes),
                                d.bits, static_cast<std::size_t>(d.count),
                                StrayBits::kMask);
      const std::size_t bw = static_cast<std::size_t>(d.block_words);
      for (std::size_t b : bad_blocks) {
        const std::size_t begin = b * bw;
        const std::size_t end =
            std::min(static_cast<std::size_t>(d.count), begin + bw);
        for (std::size_t i = begin; i < end; ++i) {
          if (codes[i] != 0) ++sr.words_zeroed;
          codes[i] = 0;
        }
      }
      const std::vector<std::uint8_t> rebuilt = pack_codes(codes, d.bits);
      std::memcpy(payload, rebuilt.data(), rebuilt.size());
    } else {
      sr.words_zeroed = static_cast<std::int64_t>(d.count);
      std::memset(payload, 0, d.payload_bytes);
    }
    snap.report_.words_zeroed += sr.words_zeroed;
    snap.report_.sections.push_back(std::move(sr));
    ++snap.report_.sections_degraded;
  }

  return snap;
}

bool MappedSnapshot::has(const std::string& name) const {
  for (const SectionDescriptor& d : sections_) {
    if (d.name == name) return true;
  }
  return false;
}

std::vector<std::string> MappedSnapshot::names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const SectionDescriptor& d : sections_) out.push_back(d.name);
  return out;
}

const SectionDescriptor& MappedSnapshot::find(const std::string& name) const {
  for (const SectionDescriptor& d : sections_) {
    if (d.name == name) return d;
  }
  fail("snapshot has no section named '" + name + "'");
}

const SectionDescriptor& MappedSnapshot::descriptor(
    const std::string& name) const {
  return find(name);
}

PackedAdaptivFloatTensor MappedSnapshot::packed_view(
    const std::string& name) const {
  const SectionDescriptor& d = find(name);
  AF_CHECK(d.kind == SectionKind::kPackedCodes &&
               d.format == FormatKind::kAdaptivFloat,
           "packed_view needs an AdaptivFloat packed section: '" + name + "'");
  AF_CHECK(d.exp_bits >= 0, "AdaptivFloat section lacks its exponent width");
  const AdaptivFloatFormat fmt(d.bits, d.exp_bits, d.exp_bias);
  return PackedAdaptivFloatTensor::view(
      fmt, d.shape, map_->base + d.payload_offset,
      static_cast<std::size_t>(d.payload_bytes), map_);
}

std::vector<std::uint16_t> MappedSnapshot::codes(
    const std::string& name) const {
  const SectionDescriptor& d = find(name);
  AF_CHECK(d.kind == SectionKind::kPackedCodes,
           "codes() needs a packed section: '" + name + "'");
  return unpack_codes(map_->base + d.payload_offset,
                      static_cast<std::size_t>(d.payload_bytes), d.bits,
                      static_cast<std::size_t>(d.count), StrayBits::kReject);
}

Tensor MappedSnapshot::fp32(const std::string& name) const {
  const SectionDescriptor& d = find(name);
  AF_CHECK(d.kind == SectionKind::kFloat32,
           "fp32() needs a float32 section: '" + name + "'");
  Tensor t(d.shape);
  std::memcpy(t.data(), map_->base + d.payload_offset,
              static_cast<std::size_t>(d.payload_bytes));
  return t;
}

const std::uint8_t* MappedSnapshot::payload(const std::string& name) const {
  const SectionDescriptor& d = find(name);
  return map_->base + d.payload_offset;
}

std::size_t MappedSnapshot::file_bytes() const {
  return map_ == nullptr ? 0 : map_->size;
}

}  // namespace af
