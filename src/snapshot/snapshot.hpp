// MappedSnapshot: zero-copy, integrity-checked model snapshot loading.
//
// open() maps the container with mmap(MAP_PRIVATE) and walks the recovery
// ladder per section before handing out views:
//
//   CRC ok ──────────────────────────────────────────────► clean
//   CRC mismatch + policy kDetect ──────────────────────► FaultError
//   parity localizes one corrupt word per block ────────► reconstruct it
//     from the additive block checksum, re-verify CRC ──► repaired
//     (bit-exact — the section CRC is the arbiter)
//   wider corruption + policy kDegradeToZero ───────────► scrub the
//     affected blocks (or the whole payload when nothing localizes) to
//     the all-zero code, which decodes to exact 0 in every format ──► degraded
//   anything else ──────────────────────────────────────► FaultError
//     (typed, catchable — a bad snapshot degrades a request, it never
//     aborts a serving process)
//
// Repair and scrub write through the private mapping: copy-on-write pages
// keep the file untouched, and the clean pages stay shared read-only
// across every process that mapped the same snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bitpack.hpp"
#include "src/snapshot/container.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/fault.hpp"

namespace af {

struct SnapshotLoadOptions {
  /// kDetect: any corruption throws. kCorrect/kRecompute: sidecar repair,
  /// then throw (storage has no upstream to recompute from, so the two
  /// rungs coincide at load time). kDegradeToZero: repair, then scrub.
  RecoveryPolicy policy = RecoveryPolicy::kCorrect;
};

class MappedSnapshot {
 public:
  /// Maps and verifies `path`. Header/TOC corruption always fails closed
  /// with a FaultError (kMalformedInput for structural violations,
  /// kStorageCorruption for CRC disagreement) — recovery applies only to
  /// section payloads, whose handling follows `opts.policy`.
  static MappedSnapshot open(const std::string& path,
                             SnapshotLoadOptions opts = {});

  std::size_t section_count() const { return sections_.size(); }
  bool has(const std::string& name) const;
  std::vector<std::string> names() const;
  const SectionDescriptor& descriptor(const std::string& name) const;

  /// Zero-copy packed tensor over the mapping (AdaptivFloat packed
  /// sections). The view shares ownership of the mapping, so it remains
  /// valid after this MappedSnapshot is destroyed.
  PackedAdaptivFloatTensor packed_view(const std::string& name) const;

  /// Code words of any packed section (copies out of the mapping).
  std::vector<std::uint16_t> codes(const std::string& name) const;

  /// FP32 section contents (copied — tiny tensors: biases, norms).
  Tensor fp32(const std::string& name) const;

  /// Post-recovery payload bytes of a section, inside the mapping.
  const std::uint8_t* payload(const std::string& name) const;

  /// What the load-time recovery ladder did, per section and aggregate.
  const SnapshotLoadReport& report() const { return report_; }

  std::size_t file_bytes() const;

 private:
  struct Mapping;

  MappedSnapshot() = default;

  const SectionDescriptor& find(const std::string& name) const;

  std::shared_ptr<Mapping> map_;
  std::vector<SectionDescriptor> sections_;
  SnapshotLoadReport report_;
};

}  // namespace af
