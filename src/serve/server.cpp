#include "src/serve/server.hpp"

#include <algorithm>
#include <utility>

#include "src/resilience/guard.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {

using Clock = std::chrono::steady_clock;

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::chrono::microseconds since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0);
}

}  // namespace

// One request in flight through the serving core. Shared between the
// submitting client (future), the queue, the executing worker and the
// watchdog; `completed` is the single-completion gate — whoever wins the
// exchange delivers the response, every other completion attempt is a
// no-op (a wedged worker's late result is discarded, never double-set).
struct InferenceServer::Ticket {
  std::promise<Response> promise;
  std::atomic<bool> completed{false};
  Tensor input;
  TenantState* tenant = nullptr;
  std::uint64_t id = 0;
  int level = 0;
  bool probe = false;
  Clock::time_point submit_tp;
  Clock::time_point deadline_tp = Clock::time_point::max();
  bool has_deadline = false;
  /// Set by the worker when execution starts (guarded by the slot mutex
  /// that also publishes the ticket to the watchdog).
  Clock::time_point exec_tp;
  bool executing = false;
};

struct InferenceServer::TenantState {
  TenantConfig cfg;
  CircuitBreaker breaker;
  explicit TenantState(TenantConfig c)
      : cfg(std::move(c)), breaker([&] {
          BreakerConfig b = cfg.breaker;
          b.ladder_levels = static_cast<int>(cfg.ladder.size());
          return b;
        }()) {}
};

struct InferenceServer::WorkerSlot {
  int index = 0;
  std::atomic<std::int64_t> heartbeat_ns{0};
  std::atomic<bool> wedged{false};
  std::atomic<bool> alive{true};
  std::atomic<std::int64_t> max_steady_allocs{0};

  std::mutex mu;  ///< guards inflight (worker publishes, watchdog reads)
  std::shared_ptr<Ticket> inflight;

  // Worker-thread-only state below (never touched by the watchdog).
  std::unique_ptr<InferenceSession> session;
  std::unique_ptr<PeFaultHook> mac_hook;
  /// Bitmask of ResiliencePolicy values whose planning run already
  /// happened — later runs at a seen policy must not allocate (under the
  /// fixed request shapes the bench and tests serve).
  unsigned planned_policies = 0;
};

InferenceServer::InferenceServer(ForwardFactory factory, ServerConfig cfg)
    : factory_(std::move(factory)),
      cfg_(cfg),
      queue_(cfg.queue_capacity, cfg.queue_shards) {
  AF_CHECK(static_cast<bool>(factory_), "server needs a forward factory");
  AF_CHECK(cfg_.workers >= 1, "server needs at least one worker");
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    for (int i = 0; i < cfg_.workers; ++i) spawn_worker_locked();
  }
  if (cfg_.watchdog.enabled) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::add_tenant(TenantConfig cfg) {
  AF_CHECK(!cfg.name.empty(), "tenant needs a name");
  AF_CHECK(!cfg.ladder.empty(), "tenant needs a non-empty policy ladder");
  std::lock_guard<std::mutex> lk(tenants_mu_);
  for (const auto& t : tenants_) {
    AF_CHECK(t->cfg.name != cfg.name, "tenant already registered: " + cfg.name);
  }
  tenants_.push_back(std::make_unique<TenantState>(std::move(cfg)));
}

InferenceServer::TenantState* InferenceServer::find_tenant(
    const std::string& name) {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  for (const auto& t : tenants_) {
    if (t->cfg.name == name) return t.get();
  }
  return nullptr;
}

bool InferenceServer::complete(const std::shared_ptr<Ticket>& ticket,
                               Response&& r) {
  bool expected = false;
  if (!ticket->completed.compare_exchange_strong(expected, true)) {
    return false;  // someone (the watchdog) already responded
  }
  r.id = ticket->id;
  r.probe = ticket->probe;
  const Clock::time_point done = Clock::now();
  r.total_us = since(ticket->submit_tp, done);
  if (ticket->executing) {
    r.queue_us = since(ticket->submit_tp, ticket->exec_tp);
  } else {
    r.queue_us = r.total_us;
  }
  ticket->promise.set_value(std::move(r));
  return true;
}

std::future<Response> InferenceServer::submit(Request req) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);

  TenantState* tenant = find_tenant(req.tenant);
  if (tenant == nullptr) {
    throw FaultError("serve", FaultKind::kMalformedInput,
                     "unknown tenant '" + req.tenant + "'");
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    throw FaultError("serve", FaultKind::kShutdown,
                     "server is draining; request rejected");
  }

  const CircuitBreaker::Decision d = tenant->breaker.admit();
  if (!d.admit) {
    stats_.rejected_open.fetch_add(1, std::memory_order_relaxed);
    throw FaultError(
        "serve/" + tenant->cfg.name, FaultKind::kCircuitOpen,
        "tenant breaker open; request rejected without execution");
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->input = std::move(req.input);
  ticket->tenant = tenant;
  ticket->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ticket->level = d.level;
  ticket->probe = d.probe;
  ticket->submit_tp = Clock::now();
  const auto deadline =
      req.deadline.count() > 0 ? req.deadline : tenant->cfg.default_deadline;
  if (deadline.count() > 0) {
    ticket->has_deadline = true;
    ticket->deadline_tp = ticket->submit_tp + deadline;
  }

  std::future<Response> fut = ticket->promise.get_future();
  if (!queue_.try_push(ticket)) {
    stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    throw FaultError("serve", FaultKind::kOverloaded,
                     "request queue at capacity (" +
                         std::to_string(queue_.capacity()) +
                         "); request rejected");
  }
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

void InferenceServer::spawn_worker_locked() {
  auto slot = std::make_shared<WorkerSlot>();
  slot->index = next_worker_index_++;
  slot->heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
  slots_.push_back(slot);
  threads_.push_back(std::make_unique<std::thread>(
      [this, slot] { worker_main(slot); }));
}

void InferenceServer::worker_main(std::shared_ptr<WorkerSlot> slot) {
  // The whole worker runs serial-pinned: every forward executes inline on
  // this thread in the fixed chunk order — N workers make independent
  // progress and bits never depend on AF_THREADS or on each other.
  ScopedSerialExecution serial;

  try {
    slot->session =
        std::make_unique<InferenceSession>(factory_(slot->index));
    if (cfg_.mac_hook_factory) {
      slot->mac_hook = cfg_.mac_hook_factory(slot->index);
    }
  } catch (...) {
    // A worker that cannot build its session serves nothing; the watchdog
    // sees no heartbeat progress only if work was in flight, so just
    // retire quietly — the remaining workers carry the queue.
    slot->alive.store(false, std::memory_order_release);
    return;
  }

  while (true) {
    slot->heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
    std::shared_ptr<Ticket> ticket;
    if (queue_.pop(ticket, std::chrono::milliseconds(2))) {
      process(*slot, ticket);
      std::lock_guard<std::mutex> lk(slot->mu);
      slot->inflight.reset();
    } else if (!running_.load(std::memory_order_acquire) &&
               queue_.size() == 0) {
      break;  // graceful drain complete
    }
    if (slot->wedged.load(std::memory_order_acquire)) {
      break;  // watchdog already failed our request and replaced us
    }
  }
  slot->alive.store(false, std::memory_order_release);
}

void InferenceServer::process(WorkerSlot& slot,
                              const std::shared_ptr<Ticket>& ticket) {
  if (ticket->completed.load(std::memory_order_acquire)) return;
  const TenantConfig& tcfg = ticket->tenant->cfg;
  CircuitBreaker& breaker = ticket->tenant->breaker;

  // Deadline shed: a request already past its deadline is never executed
  // (running it could only produce a result the client must not use).
  if (ticket->has_deadline && Clock::now() > ticket->deadline_tp) {
    Response r;
    r.error_kind = FaultKind::kDeadlineExceeded;
    r.error = "deadline expired in queue; request shed before execution";
    if (complete(ticket, std::move(r))) {
      stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      stats_.count_failure(FaultKind::kDeadlineExceeded);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lk(slot.mu);
    ticket->exec_tp = Clock::now();
    ticket->executing = true;
    slot.inflight = ticket;
  }
  slot.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);

  const int level =
      std::min(ticket->level, static_cast<int>(tcfg.ladder.size()) - 1);
  const ResiliencePolicy policy = tcfg.ladder[static_cast<std::size_t>(level)];

  InferenceSession& session = *slot.session;
  int attempt = 0;
  for (;;) {
    ResilienceReport report;
    ExecutionContext& ctx = session.context();
    ctx.resilience = policy;
    ctx.guard = tcfg.guard;
    ctx.report = &report;
    ctx.mac_hook = tcfg.use_mac_hook ? slot.mac_hook.get() : nullptr;
    ctx.threads = 0;  // serial-pinned worker; never touch the global pool

    try {
      const Tensor& y = session.run(ticket->input);

      // Track the zero-steady-state-alloc contract: the first run at a
      // given policy plans arena growth; later runs must not allocate.
      const unsigned bit = 1u << static_cast<unsigned>(policy);
      if ((slot.planned_policies & bit) != 0) {
        const std::int64_t allocs = session.last_run_heap_allocs();
        std::int64_t prev =
            slot.max_steady_allocs.load(std::memory_order_relaxed);
        while (allocs > prev && !slot.max_steady_allocs.compare_exchange_weak(
                                    prev, allocs, std::memory_order_relaxed)) {
        }
      }
      slot.planned_policies |= bit;

      // Deadline recheck: a stale result is failed typed, never returned
      // as if it were fresh.
      // Breaker feedback strictly precedes completion: a client that
      // awaited the response and then submits again must find the breaker
      // already informed by this outcome (what makes the storm test's
      // transition sequence exactly reproducible).
      if (ticket->has_deadline && Clock::now() > ticket->deadline_tp) {
        // Numerically the tenant is healthy — lateness is load, not a
        // fault; let probes recover the breaker even under pressure.
        breaker.on_success(ticket->probe);
        Response r;
        r.error_kind = FaultKind::kDeadlineExceeded;
        r.error = "completed after deadline; stale result withheld";
        r.retries = attempt;
        r.breaker_level = level;
        r.policy = policy;
        if (complete(ticket, std::move(r))) {
          stats_.deadline_missed.fetch_add(1, std::memory_order_relaxed);
          stats_.count_failure(FaultKind::kDeadlineExceeded);
        }
        return;
      }

      // A completed request whose report shows ladder interventions is the
      // breaker's fault signal: the tenant is absorbing faults even though
      // clients still get answers.
      if (report.clean()) {
        breaker.on_success(ticket->probe);
      } else {
        breaker.on_fault(ticket->probe);
      }
      Response r;
      r.ok = true;
      r.output.copy_from(y);
      r.retries = attempt;
      r.breaker_level = level;
      r.policy = policy;
      r.degraded = !report.clean() || level > 0;
      if (complete(ticket, std::move(r))) {
        stats_.completed.fetch_add(1, std::memory_order_relaxed);
        if (!report.clean() || level > 0) {
          stats_.degraded.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    } catch (const FaultError& err) {
      const bool recoverable = fault_kind_recoverable(err.kind());
      if (recoverable && attempt < tcfg.retry.max_retries) {
        const auto backoff = std::chrono::microseconds(
            tcfg.retry.backoff_base.count() << attempt);
        const bool budget_left =
            !ticket->has_deadline ||
            Clock::now() + backoff < ticket->deadline_tp;
        if (budget_left) {
          ++attempt;
          stats_.retries.fetch_add(1, std::memory_order_relaxed);
          if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
          slot.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
          continue;
        }
      }
      // Malformed requests are the client's defect, not the tenant's
      // compute health — they never walk the breaker ladder.
      if (err.kind() != FaultKind::kMalformedInput) {
        breaker.on_fault(ticket->probe);
      }
      Response r;
      r.error_kind = err.kind();
      r.error = err.what();
      r.retries = attempt;
      r.breaker_level = level;
      r.policy = policy;
      if (complete(ticket, std::move(r))) {
        stats_.count_failure(err.kind());
      }
      return;
    } catch (const std::exception& err) {
      // Fault containment backstop: even a programmer-error Error from
      // deep inside a kernel becomes a typed failed response, never a
      // dead server.
      breaker.on_fault(ticket->probe);
      Response r;
      r.error_kind = FaultKind::kUncorrectable;
      r.error = err.what();
      r.retries = attempt;
      r.breaker_level = level;
      r.policy = policy;
      if (complete(ticket, std::move(r))) {
        stats_.count_failure(FaultKind::kUncorrectable);
      }
      return;
    }
  }
}

void InferenceServer::watchdog_main() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(cfg_.watchdog.check_interval);
    const std::int64_t limit_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            cfg_.watchdog.wedge_timeout)
            .count();

    std::vector<std::shared_ptr<WorkerSlot>> slots;
    {
      std::lock_guard<std::mutex> lk(workers_mu_);
      slots = slots_;
    }
    for (const auto& slot : slots) {
      if (slot->wedged.load(std::memory_order_acquire) ||
          !slot->alive.load(std::memory_order_acquire)) {
        continue;
      }
      const std::int64_t hb = slot->heartbeat_ns.load(std::memory_order_relaxed);
      if (now_ns() - hb < limit_ns) continue;

      std::shared_ptr<Ticket> stuck;
      {
        std::lock_guard<std::mutex> lk(slot->mu);
        stuck = slot->inflight;
      }
      if (!stuck) continue;  // idle worker; stale heartbeat is harmless

      // The worker has been silent past the wedge budget with a request in
      // flight: fail the request typed and replace the worker. The wedged
      // thread retires itself when (if) its forward ever returns; its late
      // result loses the completion race and is discarded.
      slot->wedged.store(true, std::memory_order_release);
      Response r;
      r.error_kind = FaultKind::kWorkerWedged;
      r.error = "worker " + std::to_string(slot->index) +
                " heartbeat stalled past wedge timeout; request failed";
      if (complete(stuck, std::move(r))) {
        stats_.watchdog_failed.fetch_add(1, std::memory_order_relaxed);
        stats_.count_failure(FaultKind::kWorkerWedged);
      }
      {
        std::lock_guard<std::mutex> lk(workers_mu_);
        spawn_worker_locked();
      }
    }
  }
}

void InferenceServer::shutdown() {
  bool was_accepting = accepting_.exchange(false, std::memory_order_acq_rel);
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    (void)was_accepting;
    return;  // already shut down
  }
  queue_.close();
  if (watchdog_.joinable()) watchdog_.join();
  std::vector<std::unique_ptr<std::thread>> threads;
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t->joinable()) t->join();
  }
}

int InferenceServer::workers() const {
  std::lock_guard<std::mutex> lk(workers_mu_);
  int alive = 0;
  for (const auto& s : slots_) {
    if (s->alive.load(std::memory_order_acquire) &&
        !s->wedged.load(std::memory_order_acquire)) {
      ++alive;
    }
  }
  return alive;
}

std::int64_t InferenceServer::max_steady_state_allocs() const {
  std::lock_guard<std::mutex> lk(workers_mu_);
  std::int64_t worst = 0;
  for (const auto& s : slots_) {
    worst = std::max(worst,
                     s->max_steady_allocs.load(std::memory_order_relaxed));
  }
  return worst;
}

HealthReport InferenceServer::health() const {
  HealthReport h;
  h.stats = stats_.snapshot();
  h.queue_depth = queue_.size();
  h.queue_capacity = queue_.capacity();
  h.accepting = accepting_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    for (const auto& s : slots_) {
      const bool wedged = s->wedged.load(std::memory_order_acquire);
      if (wedged) ++h.workers_wedged;
      if (s->alive.load(std::memory_order_acquire) && !wedged) ++h.workers;
    }
  }
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    for (const auto& t : tenants_) {
      TenantHealth th;
      th.name = t->cfg.name;
      th.state = t->breaker.state();
      th.level = t->breaker.level();
      const auto idx = static_cast<std::size_t>(
          std::min(th.level, static_cast<int>(t->cfg.ladder.size()) - 1));
      th.policy = th.state == BreakerState::kOpen
                      ? ResiliencePolicy::kNone
                      : t->cfg.ladder[idx];
      th.breaker = t->breaker.counters();
      th.transitions = t->breaker.transitions();
      h.tenants.push_back(std::move(th));
    }
  }
  return h;
}

std::string HealthReport::to_string() const {
  std::string out;
  out += "serve: workers=" + std::to_string(workers) +
         (workers_wedged > 0
              ? " wedged=" + std::to_string(workers_wedged)
              : "") +
         " queue=" + std::to_string(queue_depth) + "/" +
         std::to_string(queue_capacity) +
         (accepting ? " accepting" : " draining") + "\n";
  out += "serve: admitted=" + std::to_string(stats.admitted) +
         " completed=" + std::to_string(stats.completed) +
         " degraded=" + std::to_string(stats.degraded) +
         " failed=" + std::to_string(stats.failed) +
         " retries=" + std::to_string(stats.retries) +
         " shed[overloaded]=" + std::to_string(stats.rejected_overload) +
         " shed[circuit-open]=" + std::to_string(stats.rejected_open) +
         " shed[deadline-exceeded]=" + std::to_string(stats.shed_deadline) +
         " late[deadline-exceeded]=" + std::to_string(stats.deadline_missed) +
         " failed[worker-wedged]=" + std::to_string(stats.watchdog_failed) +
         "\n";
  for (std::size_t k = 0; k < stats.failed_by_kind.size(); ++k) {
    if (stats.failed_by_kind[k] == 0) continue;
    out += "serve: failures[" +
           std::string(fault_kind_name(static_cast<FaultKind>(k))) +
           "]=" + std::to_string(stats.failed_by_kind[k]) + "\n";
  }
  for (const TenantHealth& t : tenants) {
    out += "serve: tenant " + t.name + " breaker=" +
           breaker_state_name(t.state) + " level=" + std::to_string(t.level) +
           " policy=" + resilience_policy_name(t.policy) +
           " opens=" + std::to_string(t.breaker.opens) +
           " step_downs=" + std::to_string(t.breaker.step_downs) +
           " step_ups=" + std::to_string(t.breaker.step_ups) +
           " probes=" + std::to_string(t.breaker.probes) +
           " rejected=" + std::to_string(t.breaker.rejected) + "\n";
    for (const BreakerTransition& tr : t.transitions) {
      out += "serve:   " + std::string(breaker_state_name(tr.from_state)) +
             "(L" + std::to_string(tr.from_level) + ") -> " +
             breaker_state_name(tr.to_state) + "(L" +
             std::to_string(tr.to_level) + "): " + tr.reason + "\n";
    }
  }
  return out;
}

}  // namespace af
