#include "src/serve/server.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "src/resilience/guard.hpp"
#include "src/runtime/batch.hpp"
#include "src/tensor/arena.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {

using Clock = std::chrono::steady_clock;

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::chrono::microseconds since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0);
}

}  // namespace

// One request in flight through the serving core. Shared between the
// submitting client (future), the queue, the executing worker and the
// watchdog; `completed` is the single-completion gate — whoever wins the
// exchange delivers the response, every other completion attempt is a
// no-op (a wedged worker's late result is discarded, never double-set).
struct InferenceServer::Ticket {
  std::promise<Response> promise;
  std::atomic<bool> completed{false};
  Tensor input;
  TenantState* tenant = nullptr;
  std::uint64_t id = 0;
  int level = 0;
  bool probe = false;
  Clock::time_point submit_tp;
  Clock::time_point deadline_tp = Clock::time_point::max();
  bool has_deadline = false;
  /// Set by the worker when execution starts (guarded by the slot mutex
  /// that also publishes the ticket to the watchdog).
  Clock::time_point exec_tp;
  bool executing = false;

  // Decode-stream requests (is_decode): never coalesced, never retried.
  bool is_decode = false;
  DecodeOp op = DecodeOp::kStep;
  std::string stream_key;  ///< "<tenant>#<stream>"
  std::vector<std::int64_t> src;
  std::int64_t last_token = -1;
};

/// One live decode stream. The entry mutex serializes steps against the
/// stream's decoder (clients must sequence their own steps anyway — step
/// N+1 needs step N's token — but the server stays safe under misuse).
struct InferenceServer::StreamEntry {
  std::mutex mu;
  std::unique_ptr<StreamDecoder> decoder;
};

struct InferenceServer::TenantState {
  TenantConfig cfg;
  CircuitBreaker breaker;
  explicit TenantState(TenantConfig c)
      : cfg(std::move(c)), breaker([&] {
          BreakerConfig b = cfg.breaker;
          b.ladder_levels = static_cast<int>(cfg.ladder.size());
          return b;
        }()) {}
};

struct InferenceServer::WorkerSlot {
  int index = 0;
  std::atomic<std::int64_t> heartbeat_ns{0};
  std::atomic<bool> wedged{false};
  std::atomic<bool> alive{true};
  std::atomic<std::int64_t> max_steady_allocs{0};

  std::mutex mu;  ///< guards inflight (worker publishes, watchdog reads)
  /// Every ticket of the batch being executed: a wedged worker has ALL of
  /// its in-flight batch members failed typed, not just one.
  std::vector<std::shared_ptr<Ticket>> inflight;

  // Worker-thread-only state below (never touched by the watchdog).
  std::unique_ptr<InferenceSession> session;
  std::unique_ptr<PeFaultHook> mac_hook;
  /// Staging arena the batched activation tensor is packed into. Separate
  /// from the session's arena (which resets at the start of every run), so
  /// the packed input stays valid across the forward.
  Arena staging;
  /// Per-ResiliencePolicy largest activation row count whose planning run
  /// already happened — later runs at or below a planned row count must
  /// not allocate (the arena holds the larger peak and owned buffers
  /// shrink in place). Generalizes the PR-8 per-policy planned bitmask to
  /// variable batch shapes.
  std::array<std::int64_t,
             static_cast<std::size_t>(ResiliencePolicy::kAbftGuard) + 1>
      planned_rows{};
};

InferenceServer::InferenceServer(ForwardFactory factory, ServerConfig cfg)
    : factory_(std::move(factory)),
      cfg_(cfg),
      queue_(cfg.queue_capacity, cfg.queue_shards) {
  AF_CHECK(static_cast<bool>(factory_), "server needs a forward factory");
  AF_CHECK(cfg_.workers >= 1, "server needs at least one worker");
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    for (int i = 0; i < cfg_.workers; ++i) spawn_worker_locked();
  }
  if (cfg_.watchdog.enabled) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::add_tenant(TenantConfig cfg) {
  AF_CHECK(!cfg.name.empty(), "tenant needs a name");
  AF_CHECK(!cfg.ladder.empty(), "tenant needs a non-empty policy ladder");
  std::lock_guard<std::mutex> lk(tenants_mu_);
  for (const auto& t : tenants_) {
    AF_CHECK(t->cfg.name != cfg.name, "tenant already registered: " + cfg.name);
  }
  tenants_.push_back(std::make_unique<TenantState>(std::move(cfg)));
}

InferenceServer::TenantState* InferenceServer::find_tenant(
    const std::string& name) {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  for (const auto& t : tenants_) {
    if (t->cfg.name == name) return t.get();
  }
  return nullptr;
}

bool InferenceServer::complete(const std::shared_ptr<Ticket>& ticket,
                               Response&& r) {
  bool expected = false;
  if (!ticket->completed.compare_exchange_strong(expected, true)) {
    return false;  // someone (the watchdog) already responded
  }
  r.id = ticket->id;
  r.probe = ticket->probe;
  const Clock::time_point done = Clock::now();
  r.total_us = since(ticket->submit_tp, done);
  if (ticket->executing) {
    r.queue_us = since(ticket->submit_tp, ticket->exec_tp);
  } else {
    r.queue_us = r.total_us;
  }
  stats_.record_queue_wait(r.queue_us.count());
  ticket->promise.set_value(std::move(r));
  return true;
}

std::future<Response> InferenceServer::submit(Request req) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);

  TenantState* tenant = find_tenant(req.tenant);
  if (tenant == nullptr) {
    throw FaultError("serve", FaultKind::kMalformedInput,
                     "unknown tenant '" + req.tenant + "'");
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    throw FaultError("serve", FaultKind::kShutdown,
                     "server is draining; request rejected");
  }

  const CircuitBreaker::Decision d = tenant->breaker.admit();
  if (!d.admit) {
    stats_.rejected_open.fetch_add(1, std::memory_order_relaxed);
    throw FaultError(
        "serve/" + tenant->cfg.name, FaultKind::kCircuitOpen,
        "tenant breaker open; request rejected without execution");
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->input = std::move(req.input);
  ticket->tenant = tenant;
  ticket->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ticket->level = d.level;
  ticket->probe = d.probe;
  ticket->submit_tp = Clock::now();
  const auto deadline =
      req.deadline.count() > 0 ? req.deadline : tenant->cfg.default_deadline;
  if (deadline.count() > 0) {
    ticket->has_deadline = true;
    ticket->deadline_tp = ticket->submit_tp + deadline;
  }

  std::future<Response> fut = ticket->promise.get_future();
  if (!queue_.try_push(ticket)) {
    stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    throw FaultError("serve", FaultKind::kOverloaded,
                     "request queue at capacity (" +
                         std::to_string(queue_.capacity()) +
                         "); request rejected");
  }
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

std::future<Response> InferenceServer::submit_decode(DecodeRequest req) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);

  TenantState* tenant = find_tenant(req.tenant);
  if (tenant == nullptr) {
    throw FaultError("serve", FaultKind::kMalformedInput,
                     "unknown tenant '" + req.tenant + "'");
  }
  if (!cfg_.decoder_factory) {
    throw FaultError("serve", FaultKind::kMalformedInput,
                     "server has no decoder_factory; decode rejected");
  }
  if (req.stream.empty()) {
    throw FaultError("serve", FaultKind::kMalformedInput,
                     "decode request needs a stream id");
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    throw FaultError("serve", FaultKind::kShutdown,
                     "server is draining; request rejected");
  }

  const CircuitBreaker::Decision d = tenant->breaker.admit();
  if (!d.admit) {
    stats_.rejected_open.fetch_add(1, std::memory_order_relaxed);
    throw FaultError(
        "serve/" + tenant->cfg.name, FaultKind::kCircuitOpen,
        "tenant breaker open; request rejected without execution");
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->is_decode = true;
  ticket->op = req.op;
  ticket->stream_key = req.tenant + "#" + req.stream;
  ticket->src = std::move(req.src);
  ticket->last_token = req.last_token;
  ticket->tenant = tenant;
  ticket->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ticket->level = d.level;
  ticket->probe = d.probe;
  ticket->submit_tp = Clock::now();
  const auto deadline =
      req.deadline.count() > 0 ? req.deadline : tenant->cfg.default_deadline;
  if (deadline.count() > 0) {
    ticket->has_deadline = true;
    ticket->deadline_tp = ticket->submit_tp + deadline;
  }

  std::future<Response> fut = ticket->promise.get_future();
  if (!queue_.try_push(ticket)) {
    stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
    throw FaultError("serve", FaultKind::kOverloaded,
                     "request queue at capacity (" +
                         std::to_string(queue_.capacity()) +
                         "); request rejected");
  }
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

bool InferenceServer::evict_stream(const std::string& key) {
  std::shared_ptr<StreamEntry> victim;
  {
    std::lock_guard<std::mutex> lk(streams_mu_);
    auto it = streams_.find(key);
    if (it == streams_.end()) return false;
    victim = std::move(it->second);
    streams_.erase(it);
  }
  // Destroy the decoder (and its KV arenas) outside the map mutex, after
  // any in-flight step on it has finished.
  std::lock_guard<std::mutex> lk(victim->mu);
  victim->decoder.reset();
  return true;
}

void InferenceServer::spawn_worker_locked() {
  auto slot = std::make_shared<WorkerSlot>();
  slot->index = next_worker_index_++;
  slot->heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
  slots_.push_back(slot);
  threads_.push_back(std::make_unique<std::thread>(
      [this, slot] { worker_main(slot); }));
}

void InferenceServer::worker_main(std::shared_ptr<WorkerSlot> slot) {
  // The whole worker runs serial-pinned: every forward executes inline on
  // this thread in the fixed chunk order — N workers make independent
  // progress and bits never depend on AF_THREADS or on each other.
  ScopedSerialExecution serial;

  try {
    slot->session =
        std::make_unique<InferenceSession>(factory_(slot->index));
    if (cfg_.mac_hook_factory) {
      slot->mac_hook = cfg_.mac_hook_factory(slot->index);
    }
  } catch (...) {
    // A worker that cannot build its session serves nothing; the watchdog
    // sees no heartbeat progress only if work was in flight, so just
    // retire quietly — the remaining workers carry the queue.
    slot->alive.store(false, std::memory_order_release);
    return;
  }

  while (true) {
    slot->heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
    std::shared_ptr<Ticket> ticket;
    if (queue_.pop(ticket, std::chrono::milliseconds(2))) {
      if (ticket->is_decode) {
        // Stateful and stream-ordered: a decode request always runs solo.
        process_decode(*slot, ticket);
      } else {
        std::vector<std::shared_ptr<Ticket>> batch;
        batch.push_back(std::move(ticket));
        std::chrono::microseconds waited{0};
        if (cfg_.batch.max_batch > 1) waited = coalesce(*slot, batch);
        process(*slot, batch, waited);
      }
      std::lock_guard<std::mutex> lk(slot->mu);
      slot->inflight.clear();
    } else if (!running_.load(std::memory_order_acquire) &&
               queue_.size() == 0) {
      break;  // graceful drain complete
    }
    if (slot->wedged.load(std::memory_order_acquire)) {
      break;  // watchdog already failed our request and replaced us
    }
  }
  slot->alive.store(false, std::memory_order_release);
}

std::chrono::microseconds InferenceServer::coalesce(
    WorkerSlot& slot, std::vector<std::shared_ptr<Ticket>>& batch) {
  const BatchConfig& bc = cfg_.batch;
  const std::shared_ptr<Ticket> lead = batch.front();
  // A half-open probe is the breaker's isolated health check and runs
  // solo; malformed (non-rank-2, empty) inputs must also fail
  // individually, never drag a batch down with them.
  if (lead->probe || lead->input.rank() != 2 || lead->input.dim(0) <= 0) {
    return std::chrono::microseconds{0};
  }
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point window_end = t0 + bc.coalesce_window;
  TenantState* const tenant = lead->tenant;
  const int level = lead->level;
  const std::int64_t d = lead->input.dim(1);
  const auto match = [&](const std::shared_ptr<Ticket>& t) {
    // Never cross-tenant, never across ladder levels (one policy must
    // serve the whole batch), never probes, never decode steps (stateful;
    // they run solo), rank-2 same-width rows only.
    return !t->is_decode && t->tenant == tenant && t->level == level &&
           !t->probe && t->input.rank() == 2 && t->input.dim(1) == d &&
           t->input.dim(0) > 0;
  };
  for (;;) {
    queue_.try_pop_batch(batch, bc.max_batch - static_cast<int>(batch.size()),
                         match);
    if (static_cast<int>(batch.size()) >= bc.max_batch) break;
    const Clock::time_point now = Clock::now();
    // Wait bound: the coalesce window, tightened so the batch never holds
    // a member past the point it could still complete on time — the
    // margin budgets pack + forward + scatter.
    Clock::time_point bound = window_end;
    for (const auto& t : batch) {
      if (!t->has_deadline) continue;
      bound = std::min(bound, t->deadline_tp - bc.deadline_margin);
    }
    if (now >= bound) break;
    slot.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
    std::this_thread::sleep_for(std::min<Clock::duration>(
        bound - now, std::chrono::microseconds(200)));
  }
  return since(t0, Clock::now());
}

void InferenceServer::process(WorkerSlot& slot,
                              std::vector<std::shared_ptr<Ticket>>& batch,
                              std::chrono::microseconds coalesce_us) {
  // Per-member shed before packing: already-completed tickets drop
  // silently; members past their deadline are shed typed without
  // execution — queue expiry is a per-request fault, never the batch's
  // (running an expired member could only produce a result its client
  // must not use).
  std::vector<std::shared_ptr<Ticket>> live;
  live.reserve(batch.size());
  for (auto& ticket : batch) {
    if (ticket->completed.load(std::memory_order_acquire)) continue;
    if (ticket->has_deadline && Clock::now() > ticket->deadline_tp) {
      Response r;
      r.error_kind = FaultKind::kDeadlineExceeded;
      r.error = "deadline expired in queue; request shed before execution";
      if (complete(ticket, std::move(r))) {
        stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
        stats_.count_failure(FaultKind::kDeadlineExceeded);
      }
      continue;
    }
    live.push_back(ticket);
  }
  if (live.empty()) return;

  const TenantConfig& tcfg = live.front()->tenant->cfg;
  CircuitBreaker& breaker = live.front()->tenant->breaker;

  {
    std::lock_guard<std::mutex> lk(slot.mu);
    const Clock::time_point start = Clock::now();
    for (const auto& ticket : live) {
      ticket->exec_tp = start;
      ticket->executing = true;
    }
    slot.inflight = live;
  }
  slot.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);

  const int level = std::min(live.front()->level,
                             static_cast<int>(tcfg.ladder.size()) - 1);
  const ResiliencePolicy policy = tcfg.ladder[static_cast<std::size_t>(level)];
  const std::size_t pidx = static_cast<std::size_t>(policy);
  const int batch_size = static_cast<int>(live.size());

  // Pack the members into one [total_rows, d] activation tensor in the
  // worker's staging arena (not the session arena — run() resets that). A
  // solo request executes its input tensor directly: the batch=1 path is
  // the PR-8 single-request path, byte-for-byte.
  const Tensor* input = &live.front()->input;
  Tensor packed;
  std::vector<std::int64_t> row_offsets;
  if (batch_size > 1) {
    std::vector<const Tensor*> inputs;
    inputs.reserve(live.size());
    for (const auto& ticket : live) inputs.push_back(&ticket->input);
    slot.staging.reset();
    ArenaScope scope(&slot.staging);
    packed = pack_rows(inputs, &row_offsets);
    input = &packed;
  }
  stats_.count_batch(batch_size, coalesce_us.count());

  InferenceSession& session = *slot.session;

  // Eager pre-plan (BatchConfig::plan_rows): before the first counted run
  // at this policy, grow the arena with a zero-input forward at the
  // configured peak row count, so every real batch at or below it replays
  // alloc-free from its first execution.
  if (cfg_.batch.plan_rows > 0 && slot.planned_rows[pidx] == 0 &&
      input->rank() == 2 && input->dim(0) < cfg_.batch.plan_rows) {
    ExecutionContext& ctx = session.context();
    ctx.resilience = policy;
    ctx.guard = tcfg.guard;
    ctx.report = nullptr;
    ctx.mac_hook = nullptr;
    ctx.threads = 0;
    try {
      session.plan(Tensor({cfg_.batch.plan_rows, input->dim(1)}));
      slot.planned_rows[pidx] = cfg_.batch.plan_rows;
    } catch (...) {
      // Planning is best-effort (a strict guard could flag the zero
      // exemplar); fall back to lazy shape-driven planning below.
    }
  }

  int attempt = 0;
  for (;;) {
    ResilienceReport report;
    ExecutionContext& ctx = session.context();
    ctx.resilience = policy;
    ctx.guard = tcfg.guard;
    ctx.report = &report;
    ctx.mac_hook = tcfg.use_mac_hook ? slot.mac_hook.get() : nullptr;
    ctx.threads = 0;  // serial-pinned worker; never touch the global pool

    try {
      const std::int64_t rows = input->rank() == 2 ? input->dim(0) : 1;
      const bool was_planned =
          slot.planned_rows[pidx] > 0 && rows <= slot.planned_rows[pidx];
      const Tensor& y = session.run(*input);

      // Zero-steady-state-alloc contract: a run at or below the planned
      // row count for its policy must not allocate (the arena holds the
      // larger peak; owned output buffers shrink in place). A larger run
      // is a planning run and raises the planned row count instead.
      if (was_planned) {
        const std::int64_t allocs = session.last_run_heap_allocs();
        std::int64_t prev =
            slot.max_steady_allocs.load(std::memory_order_relaxed);
        while (allocs > prev && !slot.max_steady_allocs.compare_exchange_weak(
                                    prev, allocs, std::memory_order_relaxed)) {
        }
      } else {
        slot.planned_rows[pidx] = std::max(slot.planned_rows[pidx], rows);
      }

      // Deadline recheck: a stale result is failed typed, never returned
      // as if it were fresh.
      // Breaker feedback strictly precedes every completion: a client that
      // awaited a response and then submits again must find the breaker
      // already informed by this outcome (what makes the storm test's
      // transition sequence exactly reproducible). The batch executed as
      // one forward, but the ladder walks request-by-request, exactly as
      // the serial path would have.
      const Clock::time_point done = Clock::now();
      for (const auto& ticket : live) {
        const bool late = ticket->has_deadline && done > ticket->deadline_tp;
        if (late || report.clean()) {
          // A late result means the tenant is numerically healthy —
          // lateness is load, not a fault; probes still recover the
          // breaker under pressure.
          breaker.on_success(ticket->probe);
        } else {
          breaker.on_fault(ticket->probe);
        }
      }

      for (std::size_t i = 0; i < live.size(); ++i) {
        const auto& ticket = live[i];
        Response r;
        r.retries = attempt;
        r.breaker_level = level;
        r.policy = policy;
        r.batch_size = batch_size;
        r.coalesce_us = coalesce_us;
        if (ticket->has_deadline && done > ticket->deadline_tp) {
          r.error_kind = FaultKind::kDeadlineExceeded;
          r.error = "completed after deadline; stale result withheld";
          if (complete(ticket, std::move(r))) {
            stats_.deadline_missed.fetch_add(1, std::memory_order_relaxed);
            stats_.count_failure(FaultKind::kDeadlineExceeded);
          }
          continue;
        }
        r.ok = true;
        if (batch_size == 1) {
          r.output.copy_from(y);
        } else {
          // Scatter: this member's rows, copied out of the batched output
          // into owned storage (bit-identical to its serial execution by
          // row independence of every kernel on the path).
          r.output =
              copy_row_block(y, row_offsets[i], ticket->input.dim(0));
        }
        const bool degraded = !report.clean() || level > 0;
        r.degraded = degraded;
        if (complete(ticket, std::move(r))) {
          stats_.completed.fetch_add(1, std::memory_order_relaxed);
          if (degraded) {
            stats_.degraded.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      return;
    } catch (const FaultError& err) {
      // Fault attribution: a compute fault surfaced by the batched forward
      // cannot be pinned on one member, so the WHOLE batch retries (and,
      // when retries exhaust, fails) together through the breaker ladder.
      const bool recoverable = fault_kind_recoverable(err.kind());
      if (recoverable && attempt < tcfg.retry.max_retries) {
        const auto backoff = std::chrono::microseconds(
            tcfg.retry.backoff_base.count() << attempt);
        Clock::time_point tightest = Clock::time_point::max();
        bool any_deadline = false;
        for (const auto& ticket : live) {
          if (!ticket->has_deadline) continue;
          any_deadline = true;
          tightest = std::min(tightest, ticket->deadline_tp);
        }
        const bool budget_left =
            !any_deadline || Clock::now() + backoff < tightest;
        if (budget_left) {
          ++attempt;
          stats_.retries.fetch_add(1, std::memory_order_relaxed);
          if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
          slot.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
          continue;
        }
      }
      // Malformed requests are the client's defect, not the tenant's
      // compute health — they never walk the breaker ladder.
      if (err.kind() != FaultKind::kMalformedInput) {
        for (const auto& ticket : live) breaker.on_fault(ticket->probe);
      }
      for (const auto& ticket : live) {
        Response r;
        r.error_kind = err.kind();
        r.error = err.what();
        r.retries = attempt;
        r.breaker_level = level;
        r.policy = policy;
        r.batch_size = batch_size;
        r.coalesce_us = coalesce_us;
        if (complete(ticket, std::move(r))) {
          stats_.count_failure(err.kind());
        }
      }
      return;
    } catch (const std::exception& err) {
      // Fault containment backstop: even a programmer-error Error from
      // deep inside a kernel becomes typed failed responses, never a
      // dead server.
      for (const auto& ticket : live) breaker.on_fault(ticket->probe);
      for (const auto& ticket : live) {
        Response r;
        r.error_kind = FaultKind::kUncorrectable;
        r.error = err.what();
        r.retries = attempt;
        r.breaker_level = level;
        r.policy = policy;
        r.batch_size = batch_size;
        r.coalesce_us = coalesce_us;
        if (complete(ticket, std::move(r))) {
          stats_.count_failure(FaultKind::kUncorrectable);
        }
      }
      return;
    }
  }
}

void InferenceServer::process_decode(WorkerSlot& slot,
                                     const std::shared_ptr<Ticket>& ticket) {
  if (ticket->completed.load(std::memory_order_acquire)) return;
  const TenantConfig& tcfg = ticket->tenant->cfg;
  CircuitBreaker& breaker = ticket->tenant->breaker;

  // Deadline shed before execution. A shed step evicts its whole stream:
  // the sequence now has a hole no later step could fill, so holding the
  // KV cache would only leak it.
  if (ticket->has_deadline && Clock::now() > ticket->deadline_tp) {
    if (evict_stream(ticket->stream_key)) {
      stats_.decode_evicted.fetch_add(1, std::memory_order_relaxed);
    }
    Response r;
    r.error_kind = FaultKind::kDeadlineExceeded;
    r.error = "deadline expired in queue; decode request shed and stream '" +
              ticket->stream_key + "' evicted";
    if (complete(ticket, std::move(r))) {
      stats_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      stats_.count_failure(FaultKind::kDeadlineExceeded);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lk(slot.mu);
    ticket->exec_tp = Clock::now();
    ticket->executing = true;
    slot.inflight = {ticket};
  }
  slot.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);

  const int level = std::min(ticket->level,
                             static_cast<int>(tcfg.ladder.size()) - 1);
  const ResiliencePolicy policy = tcfg.ladder[static_cast<std::size_t>(level)];

  try {
    std::int64_t token = -1;
    switch (ticket->op) {
      case DecodeOp::kOpen: {
        // Build + prefill outside every lock (the encoder forward is the
        // expensive part); publish to the map only once the stream is
        // usable. Reopening an id replaces (and frees) the old stream.
        auto entry = std::make_shared<StreamEntry>();
        entry->decoder = cfg_.decoder_factory();
        entry->decoder->open(ticket->src);
        token = entry->decoder->bos_token();
        {
          std::lock_guard<std::mutex> lk(streams_mu_);
          streams_[ticket->stream_key] = std::move(entry);
        }
        stats_.decode_opened.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case DecodeOp::kStep: {
        std::shared_ptr<StreamEntry> entry;
        {
          std::lock_guard<std::mutex> lk(streams_mu_);
          auto it = streams_.find(ticket->stream_key);
          if (it != streams_.end()) entry = it->second;
        }
        if (entry == nullptr) {
          throw FaultError("serve/" + tcfg.name, FaultKind::kMalformedInput,
                           "unknown decode stream '" + ticket->stream_key +
                               "' (never opened, or already evicted)");
        }
        std::lock_guard<std::mutex> lk(entry->mu);
        if (entry->decoder == nullptr) {
          // Evicted between lookup and lock.
          throw FaultError("serve/" + tcfg.name, FaultKind::kMalformedInput,
                           "unknown decode stream '" + ticket->stream_key +
                               "' (never opened, or already evicted)");
        }
        token = entry->decoder->step(ticket->last_token);
        stats_.decode_steps.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case DecodeOp::kClose: {
        if (evict_stream(ticket->stream_key)) {
          stats_.decode_closed.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
    }

    const Clock::time_point done = Clock::now();
    // Lateness is load, not a compute fault (same rule as process()).
    breaker.on_success(ticket->probe);
    Response r;
    r.breaker_level = level;
    r.policy = policy;
    if (ticket->has_deadline && done > ticket->deadline_tp) {
      if (evict_stream(ticket->stream_key)) {
        stats_.decode_evicted.fetch_add(1, std::memory_order_relaxed);
      }
      r.error_kind = FaultKind::kDeadlineExceeded;
      r.error = "decode completed after deadline; stale token withheld and "
                "stream evicted";
      if (complete(ticket, std::move(r))) {
        stats_.deadline_missed.fetch_add(1, std::memory_order_relaxed);
        stats_.count_failure(FaultKind::kDeadlineExceeded);
      }
      return;
    }
    r.ok = true;
    r.token = token;
    r.degraded = level > 0;
    if (complete(ticket, std::move(r))) {
      stats_.completed.fetch_add(1, std::memory_order_relaxed);
      if (r.degraded) stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const FaultError& err) {
    // Never retried: a step is stateful (it appended to the KV cache), so
    // re-executing after a fault could double-append — the stream is
    // evicted instead and the client reopens from scratch.
    if (evict_stream(ticket->stream_key)) {
      stats_.decode_evicted.fetch_add(1, std::memory_order_relaxed);
    }
    if (err.kind() != FaultKind::kMalformedInput) {
      breaker.on_fault(ticket->probe);
    }
    Response r;
    r.error_kind = err.kind();
    r.error = err.what();
    r.breaker_level = level;
    r.policy = policy;
    if (complete(ticket, std::move(r))) stats_.count_failure(err.kind());
  } catch (const std::exception& err) {
    if (evict_stream(ticket->stream_key)) {
      stats_.decode_evicted.fetch_add(1, std::memory_order_relaxed);
    }
    breaker.on_fault(ticket->probe);
    Response r;
    r.error_kind = FaultKind::kUncorrectable;
    r.error = err.what();
    r.breaker_level = level;
    r.policy = policy;
    if (complete(ticket, std::move(r))) {
      stats_.count_failure(FaultKind::kUncorrectable);
    }
  }
}

void InferenceServer::watchdog_main() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(cfg_.watchdog.check_interval);
    const std::int64_t limit_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            cfg_.watchdog.wedge_timeout)
            .count();

    std::vector<std::shared_ptr<WorkerSlot>> slots;
    {
      std::lock_guard<std::mutex> lk(workers_mu_);
      slots = slots_;
    }
    for (const auto& slot : slots) {
      if (slot->wedged.load(std::memory_order_acquire) ||
          !slot->alive.load(std::memory_order_acquire)) {
        continue;
      }
      const std::int64_t hb = slot->heartbeat_ns.load(std::memory_order_relaxed);
      if (now_ns() - hb < limit_ns) continue;

      std::vector<std::shared_ptr<Ticket>> stuck;
      {
        std::lock_guard<std::mutex> lk(slot->mu);
        stuck = slot->inflight;
      }
      if (stuck.empty()) continue;  // idle worker; stale heartbeat is harmless

      // The worker has been silent past the wedge budget with work in
      // flight: fail EVERY member of its batch typed and replace the
      // worker. The wedged thread retires itself when (if) its forward
      // ever returns; its late results lose the completion race and are
      // discarded.
      slot->wedged.store(true, std::memory_order_release);
      for (const auto& ticket : stuck) {
        Response r;
        r.error_kind = FaultKind::kWorkerWedged;
        r.error = "worker " + std::to_string(slot->index) +
                  " heartbeat stalled past wedge timeout; request failed";
        if (complete(ticket, std::move(r))) {
          stats_.watchdog_failed.fetch_add(1, std::memory_order_relaxed);
          stats_.count_failure(FaultKind::kWorkerWedged);
        }
      }
      {
        std::lock_guard<std::mutex> lk(workers_mu_);
        spawn_worker_locked();
      }
    }
  }
}

void InferenceServer::shutdown() {
  bool was_accepting = accepting_.exchange(false, std::memory_order_acq_rel);
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    (void)was_accepting;
    return;  // already shut down
  }
  queue_.close();
  if (watchdog_.joinable()) watchdog_.join();
  std::vector<std::unique_ptr<std::thread>> threads;
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t->joinable()) t->join();
  }
  // Workers are gone: free every live stream's KV cache state. Counted as
  // evictions — a drain is the server letting go, not a client close.
  std::map<std::string, std::shared_ptr<StreamEntry>> streams;
  {
    std::lock_guard<std::mutex> lk(streams_mu_);
    streams.swap(streams_);
  }
  stats_.decode_evicted.fetch_add(static_cast<std::int64_t>(streams.size()),
                                  std::memory_order_relaxed);
}

std::int64_t InferenceServer::decode_streams() const {
  std::lock_guard<std::mutex> lk(streams_mu_);
  return static_cast<std::int64_t>(streams_.size());
}

int InferenceServer::workers() const {
  std::lock_guard<std::mutex> lk(workers_mu_);
  int alive = 0;
  for (const auto& s : slots_) {
    if (s->alive.load(std::memory_order_acquire) &&
        !s->wedged.load(std::memory_order_acquire)) {
      ++alive;
    }
  }
  return alive;
}

std::int64_t InferenceServer::max_steady_state_allocs() const {
  std::lock_guard<std::mutex> lk(workers_mu_);
  std::int64_t worst = 0;
  for (const auto& s : slots_) {
    worst = std::max(worst,
                     s->max_steady_allocs.load(std::memory_order_relaxed));
  }
  return worst;
}

HealthReport InferenceServer::health() const {
  HealthReport h;
  h.stats = stats_.snapshot();
  h.queue_depth = queue_.size();
  h.queue_capacity = queue_.capacity();
  h.decode_streams = decode_streams();
  h.accepting = accepting_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    for (const auto& s : slots_) {
      const bool wedged = s->wedged.load(std::memory_order_acquire);
      if (wedged) ++h.workers_wedged;
      if (s->alive.load(std::memory_order_acquire) && !wedged) ++h.workers;
    }
  }
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    for (const auto& t : tenants_) {
      TenantHealth th;
      th.name = t->cfg.name;
      th.state = t->breaker.state();
      th.level = t->breaker.level();
      const auto idx = static_cast<std::size_t>(
          std::min(th.level, static_cast<int>(t->cfg.ladder.size()) - 1));
      th.policy = th.state == BreakerState::kOpen
                      ? ResiliencePolicy::kNone
                      : t->cfg.ladder[idx];
      th.breaker = t->breaker.counters();
      th.transitions = t->breaker.transitions();
      h.tenants.push_back(std::move(th));
    }
  }
  return h;
}

std::string HealthReport::to_string() const {
  std::string out;
  out += "serve: workers=" + std::to_string(workers) +
         (workers_wedged > 0
              ? " wedged=" + std::to_string(workers_wedged)
              : "") +
         " queue=" + std::to_string(queue_depth) + "/" +
         std::to_string(queue_capacity) +
         (accepting ? " accepting" : " draining") + "\n";
  out += "serve: admitted=" + std::to_string(stats.admitted) +
         " completed=" + std::to_string(stats.completed) +
         " degraded=" + std::to_string(stats.degraded) +
         " failed=" + std::to_string(stats.failed) +
         " retries=" + std::to_string(stats.retries) +
         " shed[overloaded]=" + std::to_string(stats.rejected_overload) +
         " shed[circuit-open]=" + std::to_string(stats.rejected_open) +
         " shed[deadline-exceeded]=" + std::to_string(stats.shed_deadline) +
         " late[deadline-exceeded]=" + std::to_string(stats.deadline_missed) +
         " failed[worker-wedged]=" + std::to_string(stats.watchdog_failed) +
         "\n";
  out += "serve: queue_wait_p50_us<=" +
         std::to_string(stats.queue_wait_percentile_us(0.50)) +
         " queue_wait_p99_us<=" +
         std::to_string(stats.queue_wait_percentile_us(0.99)) + "\n";
  if (stats.batches_executed > 0) {
    const double mean_occupancy =
        static_cast<double>(stats.batched_requests) /
        static_cast<double>(stats.batches_executed);
    out += "serve: batches=" + std::to_string(stats.batches_executed) +
           " batched_requests=" + std::to_string(stats.batched_requests) +
           " mean_occupancy=" +
           std::to_string(mean_occupancy).substr(0, 5) +
           " coalesce_wait_us=" + std::to_string(stats.coalesce_wait_us) +
           "\n";
    std::string occ;
    for (std::size_t b = 1; b < stats.batch_occupancy.size(); ++b) {
      if (stats.batch_occupancy[b] == 0) continue;
      if (!occ.empty()) occ += " ";
      occ += std::to_string(b) +
             (b == kBatchOccupancyBuckets ? "+" : "") + ":" +
             std::to_string(stats.batch_occupancy[b]);
    }
    if (!occ.empty()) out += "serve: batch_occupancy " + occ + "\n";
  }
  if (stats.decode_opened > 0 || decode_streams > 0) {
    out += "serve: decode streams=" + std::to_string(decode_streams) +
           " opened=" + std::to_string(stats.decode_opened) +
           " steps=" + std::to_string(stats.decode_steps) +
           " closed=" + std::to_string(stats.decode_closed) +
           " evicted=" + std::to_string(stats.decode_evicted) + "\n";
  }
  for (std::size_t k = 0; k < stats.failed_by_kind.size(); ++k) {
    if (stats.failed_by_kind[k] == 0) continue;
    out += "serve: failures[" +
           std::string(fault_kind_name(static_cast<FaultKind>(k))) +
           "]=" + std::to_string(stats.failed_by_kind[k]) + "\n";
  }
  for (const TenantHealth& t : tenants) {
    out += "serve: tenant " + t.name + " breaker=" +
           breaker_state_name(t.state) + " level=" + std::to_string(t.level) +
           " policy=" + resilience_policy_name(t.policy) +
           " opens=" + std::to_string(t.breaker.opens) +
           " step_downs=" + std::to_string(t.breaker.step_downs) +
           " step_ups=" + std::to_string(t.breaker.step_ups) +
           " probes=" + std::to_string(t.breaker.probes) +
           " rejected=" + std::to_string(t.breaker.rejected) + "\n";
    for (const BreakerTransition& tr : t.transitions) {
      out += "serve:   " + std::string(breaker_state_name(tr.from_state)) +
             "(L" + std::to_string(tr.from_level) + ") -> " +
             breaker_state_name(tr.to_state) + "(L" +
             std::to_string(tr.to_level) + "): " + tr.reason + "\n";
    }
  }
  return out;
}

}  // namespace af
