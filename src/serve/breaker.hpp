// Per-tenant circuit breaker: the policy-ladder walker of the serving core.
//
// A tenant serves at a resilience level — an index into its policy ladder
// (canonically {kAbftGuard, kGuard}: full checksummed protection first,
// scrub-only guarding as the cheap survival mode). The breaker watches the
// per-request fault signal (a request that failed after retries, or that
// completed with a non-clean ResilienceReport) and walks the ladder:
//
//   Closed(L)    --faults >= fault_threshold-->   Closed(L+1)   (step down)
//   Closed(max)  --faults >= fault_threshold-->   Open          (reject)
//   Open         --rejects >= open_cooldown-->    HalfOpen      (probe)
//   HalfOpen     --probe fault-->                 Open          (re-open)
//   HalfOpen     --probes >= half_open_probes-->  Closed(max)   (recover)
//   Closed(L>0)  --successes >= recovery_threshold--> Closed(L-1) (step up)
//
// Every decision is driven by counts of observed request outcomes — no
// wall clock anywhere — so a fault storm replayed request-by-request walks
// the exact same transition sequence every time, which is what makes the
// storm integration test deterministic. Transitions are recorded into a
// bounded log that HealthReport exposes.
//
// Thread-safe: all entry points take the internal mutex. Under concurrent
// workers the interleaving of outcome arrivals is scheduling-dependent, but
// the machine itself never skips a state.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace af {

enum class BreakerState {
  kClosed,    ///< serving at ladder level `level()`
  kOpen,      ///< rejecting every request unexecuted
  kHalfOpen,  ///< admitting probe requests at the most-degraded level
};

inline const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

struct BreakerConfig {
  int ladder_levels = 2;      ///< closed levels before open (>= 1)
  int fault_threshold = 4;    ///< consecutive faults to step down / open
  int recovery_threshold = 8; ///< consecutive successes to step up a level
  int open_cooldown = 16;     ///< rejections while open before half-open
  int half_open_probes = 2;   ///< successful probes to close again
};

/// One recorded state-machine transition, for HealthReport visibility.
struct BreakerTransition {
  BreakerState from_state;
  int from_level;
  BreakerState to_state;
  int to_level;
  std::string reason;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig cfg = {});

  /// Admission decision for the next request.
  struct Decision {
    bool admit = false;
    bool probe = false;  ///< half-open probe: its outcome gates recovery
    int level = 0;       ///< ladder level the request must execute at
  };
  Decision admit();

  /// Outcome feedback. `probe` echoes the admission decision's flag.
  void on_success(bool probe);
  void on_fault(bool probe);

  BreakerState state() const;
  int level() const;

  struct Counters {
    std::int64_t step_downs = 0;  ///< Closed(L) -> Closed(L+1)
    std::int64_t step_ups = 0;    ///< Closed(L) -> Closed(L-1)
    std::int64_t opens = 0;       ///< -> Open
    std::int64_t half_opens = 0;  ///< Open -> HalfOpen
    std::int64_t closes = 0;      ///< HalfOpen -> Closed
    std::int64_t rejected = 0;    ///< admit() refusals while open
    std::int64_t probes = 0;      ///< probe admissions
  };
  Counters counters() const;

  /// The most recent transitions, oldest first (bounded; earlier entries
  /// are dropped once the log exceeds kMaxTransitions).
  std::vector<BreakerTransition> transitions() const;

  const BreakerConfig& config() const { return cfg_; }

  static constexpr std::size_t kMaxTransitions = 64;

 private:
  void transition(BreakerState to_state, int to_level,
                  const std::string& reason);

  BreakerConfig cfg_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int level_ = 0;
  int consecutive_faults_ = 0;
  int consecutive_successes_ = 0;
  int open_rejections_ = 0;
  int probe_successes_ = 0;
  Counters counters_;
  std::vector<BreakerTransition> log_;
};

}  // namespace af
