// Bounded mutex-sharded MPMC request queue — the serving core's admission
// point.
//
// Capacity is enforced by one relaxed global counter (exact: an admission
// either reserves a slot or fails fast, so the queue can never grow past
// its bound and latency can never hide in an unbounded backlog); storage is
// sharded deques each under its own mutex, so concurrent producers and
// consumers contend on different locks. Producers place items round-robin
// by an atomic cursor; consumers sweep the shards starting from their own
// rotating cursor. Ordering is therefore FIFO per shard but only
// approximately FIFO globally — the serving layer orders correctness by
// per-request deadlines, not by global queue position.
//
// try_push never blocks: a full queue is an admission-control decision the
// caller converts into a typed FaultError(kOverloaded). pop blocks with a
// timeout so workers can interleave heartbeat updates and drain/shutdown
// checks with their waits.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "src/util/check.hpp"

namespace af {

template <typename T>
class ShardedBoundedQueue {
 public:
  ShardedBoundedQueue(std::int64_t capacity, int shards)
      : capacity_(capacity), shards_(static_cast<std::size_t>(shards)) {
    AF_CHECK(capacity > 0, "queue capacity must be positive");
    AF_CHECK(shards > 0, "queue shard count must be positive");
  }

  /// Admission: reserves a slot and enqueues, or returns false immediately
  /// when the queue is at capacity (the caller sheds the request).
  bool try_push(T item) {
    // Optimistic reservation: back out if the bound was overshot. The
    // counter is the single source of truth for the bound, so the check is
    // exact even with many concurrent producers.
    if (size_.fetch_add(1, std::memory_order_acq_rel) >= capacity_) {
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    const std::size_t s =
        push_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    {
      std::lock_guard<std::mutex> lk(shards_[s].mu);
      shards_[s].items.push_back(std::move(item));
    }
    {
      // Empty critical section pairing with the consumers'
      // predicate-check-then-sleep, so the wakeup cannot be lost.
      std::lock_guard<std::mutex> lk(wait_mu_);
    }
    wait_cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available, the timeout elapses, or the queue
  /// is closed and empty. Returns true when `out` was filled.
  bool pop(T& out, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (try_pop(out)) return true;
      std::unique_lock<std::mutex> lk(wait_mu_);
      const bool woke = wait_cv_.wait_until(lk, deadline, [&] {
        return closed_.load(std::memory_order_acquire) ||
               size_.load(std::memory_order_acquire) > 0;
      });
      if (!woke) return false;  // timed out
      if (closed_.load(std::memory_order_acquire) &&
          size_.load(std::memory_order_acquire) == 0) {
        return false;
      }
      // An item appeared — race other consumers for it on the next sweep.
    }
  }

  /// Non-blocking pop: sweeps every shard once from this consumer's cursor.
  bool try_pop(T& out) {
    if (size_.load(std::memory_order_acquire) <= 0) return false;
    const std::size_t start =
        pop_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = shards_[(start + i) % shards_.size()];
      std::lock_guard<std::mutex> lk(shard.mu);
      if (shard.items.empty()) continue;
      out = std::move(shard.items.front());
      shard.items.pop_front();
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    return false;
  }

  /// Non-blocking conditional pop: sweeps every shard once and extracts the
  /// first item (front-to-back within each shard, so per-shard FIFO order is
  /// preserved among matching items) satisfying `pred`. Used by the batching
  /// worker to coalesce only same-tenant, shape-compatible requests; items
  /// that fail the predicate are left in place untouched.
  template <typename Pred>
  bool try_pop_if(T& out, Pred&& pred) {
    if (size_.load(std::memory_order_acquire) <= 0) return false;
    const std::size_t start =
        pop_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = shards_[(start + i) % shards_.size()];
      std::lock_guard<std::mutex> lk(shard.mu);
      for (auto it = shard.items.begin(); it != shard.items.end(); ++it) {
        if (!pred(*it)) continue;
        out = std::move(*it);
        shard.items.erase(it);
        size_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    }
    return false;
  }

  /// Pops up to `max_items` predicate-matching items into `out` (appended).
  /// Returns the number popped. One sweep over the shards: this is a
  /// best-effort coalescing aid, not a barrier — callers that need to fill a
  /// batch keep calling it inside their coalesce-window loop.
  template <typename Pred>
  int try_pop_batch(std::vector<T>& out, int max_items, Pred&& pred) {
    int popped = 0;
    T item;
    while (popped < max_items && try_pop_if(item, pred)) {
      out.push_back(std::move(item));
      ++popped;
    }
    return popped;
  }

  /// Wakes every blocked consumer; pop() returns false once the backlog is
  /// drained. Pushes after close are still accepted only by capacity (the
  /// server gates admission separately with its accepting flag).
  void close() {
    closed_.store(true, std::memory_order_release);
    { std::lock_guard<std::mutex> lk(wait_mu_); }
    wait_cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::int64_t size() const { return size_.load(std::memory_order_acquire); }
  std::int64_t capacity() const { return capacity_; }
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    std::mutex mu;
    std::deque<T> items;
  };

  const std::int64_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::int64_t> size_{0};
  std::atomic<std::uint64_t> push_cursor_{0};
  std::atomic<std::uint64_t> pop_cursor_{0};
  std::atomic<bool> closed_{false};

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
};

}  // namespace af
