// Serving observability: relaxed-atomic counters and the HealthReport
// snapshot — the deterministic observation point the tests and the load
// bench assert against.
//
// ServerStats counters are written on the request hot paths with relaxed
// atomics (each is an independent monotone event count; no counter orders
// another), and read by snapshot() into a plain-value StatsSnapshot.
// HealthReport composes that snapshot with the per-tenant breaker states
// and the worker/queue liveness picture, and renders log lines that name
// fault kinds via fault_kind_name() — a report says "deadline-exceeded",
// never a raw enum integer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/execution_context.hpp"
#include "src/serve/breaker.hpp"
#include "src/util/fault.hpp"

namespace af {

inline const char* resilience_policy_name(ResiliencePolicy p) {
  switch (p) {
    case ResiliencePolicy::kNone: return "none";
    case ResiliencePolicy::kGuard: return "guard";
    case ResiliencePolicy::kAbft: return "abft";
    case ResiliencePolicy::kAbftGuard: return "abft+guard";
  }
  return "unknown";
}

/// Plain-value copy of the counters, safe to compare and print.
struct StatsSnapshot {
  std::int64_t submitted = 0;         ///< submit() calls
  std::int64_t admitted = 0;          ///< accepted into the queue
  std::int64_t rejected_overload = 0; ///< shed at admission: queue full
  std::int64_t rejected_open = 0;     ///< shed at admission: breaker open
  std::int64_t rejected_shutdown = 0; ///< shed at admission: draining
  std::int64_t shed_deadline = 0;     ///< expired in queue, never executed
  std::int64_t deadline_missed = 0;   ///< executed but finished too late
  std::int64_t completed = 0;         ///< responded ok
  std::int64_t degraded = 0;          ///< ok but non-clean report or level>0
  std::int64_t failed = 0;            ///< responded with a typed error
  std::int64_t retries = 0;           ///< re-executions after recoverable faults
  std::int64_t watchdog_failed = 0;   ///< in-flight requests failed as wedged
  std::array<std::int64_t, kFaultKindCount> failed_by_kind{};
};

/// Relaxed-atomic counters bumped on the request paths.
struct ServerStats {
  std::atomic<std::int64_t> submitted{0};
  std::atomic<std::int64_t> admitted{0};
  std::atomic<std::int64_t> rejected_overload{0};
  std::atomic<std::int64_t> rejected_open{0};
  std::atomic<std::int64_t> rejected_shutdown{0};
  std::atomic<std::int64_t> shed_deadline{0};
  std::atomic<std::int64_t> deadline_missed{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> degraded{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> watchdog_failed{0};
  std::array<std::atomic<std::int64_t>, kFaultKindCount> failed_by_kind{};

  void count_failure(FaultKind kind) {
    failed.fetch_add(1, std::memory_order_relaxed);
    failed_by_kind[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  StatsSnapshot snapshot() const {
    StatsSnapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.admitted = admitted.load(std::memory_order_relaxed);
    s.rejected_overload = rejected_overload.load(std::memory_order_relaxed);
    s.rejected_open = rejected_open.load(std::memory_order_relaxed);
    s.rejected_shutdown = rejected_shutdown.load(std::memory_order_relaxed);
    s.shed_deadline = shed_deadline.load(std::memory_order_relaxed);
    s.deadline_missed = deadline_missed.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.degraded = degraded.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.retries = retries.load(std::memory_order_relaxed);
    s.watchdog_failed = watchdog_failed.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < s.failed_by_kind.size(); ++k) {
      s.failed_by_kind[k] =
          failed_by_kind[k].load(std::memory_order_relaxed);
    }
    return s;
  }
};

/// One tenant's breaker picture inside a HealthReport.
struct TenantHealth {
  std::string name;
  BreakerState state = BreakerState::kClosed;
  int level = 0;
  ResiliencePolicy policy =
      ResiliencePolicy::kNone;  ///< set by the server from the ladder
  CircuitBreaker::Counters breaker;
  std::vector<BreakerTransition> transitions;
};

/// Point-in-time health of the whole server.
struct HealthReport {
  StatsSnapshot stats;
  std::vector<TenantHealth> tenants;
  int workers = 0;
  int workers_wedged = 0;
  std::int64_t queue_depth = 0;
  std::int64_t queue_capacity = 0;
  bool accepting = false;

  std::string to_string() const;
};

}  // namespace af
