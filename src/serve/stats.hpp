// Serving observability: relaxed-atomic counters and the HealthReport
// snapshot — the deterministic observation point the tests and the load
// bench assert against.
//
// ServerStats counters are written on the request hot paths with relaxed
// atomics (each is an independent monotone event count; no counter orders
// another), and read by snapshot() into a plain-value StatsSnapshot.
// HealthReport composes that snapshot with the per-tenant breaker states
// and the worker/queue liveness picture, and renders log lines that name
// fault kinds via fault_kind_name() — a report says "deadline-exceeded",
// never a raw enum integer.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/execution_context.hpp"
#include "src/serve/breaker.hpp"
#include "src/util/fault.hpp"

namespace af {

inline const char* resilience_policy_name(ResiliencePolicy p) {
  switch (p) {
    case ResiliencePolicy::kNone: return "none";
    case ResiliencePolicy::kGuard: return "guard";
    case ResiliencePolicy::kAbft: return "abft";
    case ResiliencePolicy::kAbftGuard: return "abft+guard";
  }
  return "unknown";
}

/// Log2-bucketed microsecond histogram: bucket b counts samples in
/// [2^b, 2^(b+1)) us (bucket 0 additionally holds 0us samples). 32 buckets
/// cover ~71 minutes — far beyond any deadline the server accepts.
inline constexpr std::size_t kLatencyBuckets = 32;

inline std::size_t latency_bucket_of(std::int64_t us) {
  if (us <= 1) return 0;
  std::size_t b = 0;
  while ((std::int64_t{1} << (b + 1)) <= us && b + 1 < kLatencyBuckets) ++b;
  return b;
}

/// Upper bound (exclusive) of a latency bucket in microseconds — the value
/// percentile queries report, so estimates are conservative (never report a
/// latency smaller than any sample in the bucket).
inline std::int64_t latency_bucket_upper_us(std::size_t bucket) {
  return std::int64_t{1} << (bucket + 1);
}

/// Largest batch size the occupancy histogram resolves exactly; larger
/// batches clamp into the last bucket. Index i counts executions with
/// batch size i (index 0 unused).
inline constexpr std::size_t kBatchOccupancyBuckets = 32;

/// Plain-value copy of the counters, safe to compare and print.
struct StatsSnapshot {
  std::int64_t submitted = 0;         ///< submit() calls
  std::int64_t admitted = 0;          ///< accepted into the queue
  std::int64_t rejected_overload = 0; ///< shed at admission: queue full
  std::int64_t rejected_open = 0;     ///< shed at admission: breaker open
  std::int64_t rejected_shutdown = 0; ///< shed at admission: draining
  std::int64_t shed_deadline = 0;     ///< expired in queue, never executed
  std::int64_t deadline_missed = 0;   ///< executed but finished too late
  std::int64_t completed = 0;         ///< responded ok
  std::int64_t degraded = 0;          ///< ok but non-clean report or level>0
  std::int64_t failed = 0;            ///< responded with a typed error
  std::int64_t retries = 0;           ///< re-executions after recoverable faults
  std::int64_t watchdog_failed = 0;   ///< in-flight requests failed as wedged
  std::array<std::int64_t, kFaultKindCount> failed_by_kind{};

  std::int64_t batches_executed = 0;  ///< batched forwards run (size >= 1)
  std::int64_t batched_requests = 0;  ///< requests carried by those forwards
  std::int64_t coalesce_wait_us = 0;  ///< total time spent widening batches

  std::int64_t decode_opened = 0;   ///< decode streams opened (prefills run)
  std::int64_t decode_steps = 0;    ///< decode steps served (tokens emitted)
  std::int64_t decode_closed = 0;   ///< streams closed by kClose requests
  std::int64_t decode_evicted = 0;  ///< streams freed by shed/fault/drain
  std::array<std::int64_t, kBatchOccupancyBuckets + 1> batch_occupancy{};
  std::array<std::int64_t, kLatencyBuckets> queue_wait_hist{};

  /// Conservative percentile (bucket upper bound) over recorded queue
  /// waits, in microseconds. Returns 0 when no waits were recorded.
  std::int64_t queue_wait_percentile_us(double p) const {
    std::int64_t total = 0;
    for (std::int64_t c : queue_wait_hist) total += c;
    if (total == 0) return 0;
    const std::int64_t rank =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(p * total + 0.5));
    std::int64_t seen = 0;
    for (std::size_t b = 0; b < queue_wait_hist.size(); ++b) {
      seen += queue_wait_hist[b];
      if (seen >= rank) return latency_bucket_upper_us(b);
    }
    return latency_bucket_upper_us(queue_wait_hist.size() - 1);
  }
};

/// Relaxed-atomic counters bumped on the request paths.
struct ServerStats {
  std::atomic<std::int64_t> submitted{0};
  std::atomic<std::int64_t> admitted{0};
  std::atomic<std::int64_t> rejected_overload{0};
  std::atomic<std::int64_t> rejected_open{0};
  std::atomic<std::int64_t> rejected_shutdown{0};
  std::atomic<std::int64_t> shed_deadline{0};
  std::atomic<std::int64_t> deadline_missed{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> degraded{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> watchdog_failed{0};
  std::array<std::atomic<std::int64_t>, kFaultKindCount> failed_by_kind{};

  std::atomic<std::int64_t> batches_executed{0};
  std::atomic<std::int64_t> batched_requests{0};
  std::atomic<std::int64_t> coalesce_wait_us{0};

  std::atomic<std::int64_t> decode_opened{0};
  std::atomic<std::int64_t> decode_steps{0};
  std::atomic<std::int64_t> decode_closed{0};
  std::atomic<std::int64_t> decode_evicted{0};
  std::array<std::atomic<std::int64_t>, kBatchOccupancyBuckets + 1>
      batch_occupancy{};
  std::array<std::atomic<std::int64_t>, kLatencyBuckets> queue_wait_hist{};

  /// Called once per batched forward, before per-request completion.
  void count_batch(int size, std::int64_t wait_us) {
    batches_executed.fetch_add(1, std::memory_order_relaxed);
    batched_requests.fetch_add(size, std::memory_order_relaxed);
    coalesce_wait_us.fetch_add(wait_us, std::memory_order_relaxed);
    const std::size_t b = std::min<std::size_t>(
        kBatchOccupancyBuckets, static_cast<std::size_t>(std::max(size, 1)));
    batch_occupancy[b].fetch_add(1, std::memory_order_relaxed);
  }

  void record_queue_wait(std::int64_t us) {
    queue_wait_hist[latency_bucket_of(us)].fetch_add(
        1, std::memory_order_relaxed);
  }

  void count_failure(FaultKind kind) {
    failed.fetch_add(1, std::memory_order_relaxed);
    failed_by_kind[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  StatsSnapshot snapshot() const {
    StatsSnapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.admitted = admitted.load(std::memory_order_relaxed);
    s.rejected_overload = rejected_overload.load(std::memory_order_relaxed);
    s.rejected_open = rejected_open.load(std::memory_order_relaxed);
    s.rejected_shutdown = rejected_shutdown.load(std::memory_order_relaxed);
    s.shed_deadline = shed_deadline.load(std::memory_order_relaxed);
    s.deadline_missed = deadline_missed.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.degraded = degraded.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.retries = retries.load(std::memory_order_relaxed);
    s.watchdog_failed = watchdog_failed.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < s.failed_by_kind.size(); ++k) {
      s.failed_by_kind[k] =
          failed_by_kind[k].load(std::memory_order_relaxed);
    }
    s.batches_executed = batches_executed.load(std::memory_order_relaxed);
    s.batched_requests = batched_requests.load(std::memory_order_relaxed);
    s.coalesce_wait_us = coalesce_wait_us.load(std::memory_order_relaxed);
    s.decode_opened = decode_opened.load(std::memory_order_relaxed);
    s.decode_steps = decode_steps.load(std::memory_order_relaxed);
    s.decode_closed = decode_closed.load(std::memory_order_relaxed);
    s.decode_evicted = decode_evicted.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < s.batch_occupancy.size(); ++b) {
      s.batch_occupancy[b] = batch_occupancy[b].load(std::memory_order_relaxed);
    }
    for (std::size_t b = 0; b < s.queue_wait_hist.size(); ++b) {
      s.queue_wait_hist[b] = queue_wait_hist[b].load(std::memory_order_relaxed);
    }
    return s;
  }
};

/// One tenant's breaker picture inside a HealthReport.
struct TenantHealth {
  std::string name;
  BreakerState state = BreakerState::kClosed;
  int level = 0;
  ResiliencePolicy policy =
      ResiliencePolicy::kNone;  ///< set by the server from the ladder
  CircuitBreaker::Counters breaker;
  std::vector<BreakerTransition> transitions;
};

/// Point-in-time health of the whole server.
struct HealthReport {
  StatsSnapshot stats;
  std::vector<TenantHealth> tenants;
  int workers = 0;
  int workers_wedged = 0;
  std::int64_t queue_depth = 0;
  std::int64_t queue_capacity = 0;
  std::int64_t decode_streams = 0;  ///< live streams holding KV cache
  bool accepting = false;

  std::string to_string() const;
};

}  // namespace af
