#include "src/serve/breaker.hpp"

#include "src/util/check.hpp"

namespace af {

CircuitBreaker::CircuitBreaker(BreakerConfig cfg) : cfg_(cfg) {
  AF_CHECK(cfg_.ladder_levels >= 1, "breaker needs at least one ladder level");
  AF_CHECK(cfg_.fault_threshold >= 1, "fault_threshold must be >= 1");
  AF_CHECK(cfg_.recovery_threshold >= 1, "recovery_threshold must be >= 1");
  AF_CHECK(cfg_.open_cooldown >= 1, "open_cooldown must be >= 1");
  AF_CHECK(cfg_.half_open_probes >= 1, "half_open_probes must be >= 1");
}

void CircuitBreaker::transition(BreakerState to_state, int to_level,
                                const std::string& reason) {
  if (log_.size() >= kMaxTransitions) log_.erase(log_.begin());
  log_.push_back({state_, level_, to_state, to_level, reason});
  state_ = to_state;
  level_ = to_level;
  consecutive_faults_ = 0;
  consecutive_successes_ = 0;
}

CircuitBreaker::Decision CircuitBreaker::admit() {
  std::lock_guard<std::mutex> lk(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return {true, false, level_};
    case BreakerState::kOpen:
      ++counters_.rejected;
      if (++open_rejections_ >= cfg_.open_cooldown) {
        ++counters_.half_opens;
        probe_successes_ = 0;
        transition(BreakerState::kHalfOpen, cfg_.ladder_levels - 1,
                   "cooldown elapsed after " +
                       std::to_string(open_rejections_) + " rejections");
      }
      return {false, false, level_};
    case BreakerState::kHalfOpen:
      ++counters_.probes;
      return {true, true, cfg_.ladder_levels - 1};
  }
  return {false, false, level_};
}

void CircuitBreaker::on_success(bool probe) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    if (!probe) return;  // stale outcome from before the breaker opened
    if (++probe_successes_ >= cfg_.half_open_probes) {
      ++counters_.closes;
      transition(BreakerState::kClosed, cfg_.ladder_levels - 1,
                 std::to_string(probe_successes_) + " clean probes");
    }
    return;
  }
  if (state_ != BreakerState::kClosed) return;  // stale outcome while open
  consecutive_faults_ = 0;
  if (++consecutive_successes_ >= cfg_.recovery_threshold && level_ > 0) {
    ++counters_.step_ups;
    const int to = level_ - 1;
    transition(BreakerState::kClosed, to,
               std::to_string(consecutive_successes_) +
                   " clean requests at level " + std::to_string(to + 1));
  }
}

void CircuitBreaker::on_fault(bool probe) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    if (!probe) return;
    ++counters_.opens;
    open_rejections_ = 0;
    transition(BreakerState::kOpen, level_, "probe faulted");
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  consecutive_successes_ = 0;
  if (++consecutive_faults_ < cfg_.fault_threshold) return;
  if (level_ + 1 < cfg_.ladder_levels) {
    ++counters_.step_downs;
    const int to = level_ + 1;
    transition(BreakerState::kClosed, to,
               std::to_string(consecutive_faults_) + " faults at level " +
                   std::to_string(to - 1));
  } else {
    ++counters_.opens;
    open_rejections_ = 0;
    transition(BreakerState::kOpen, level_,
               std::to_string(consecutive_faults_) +
                   " faults at the most degraded level");
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

int CircuitBreaker::level() const {
  std::lock_guard<std::mutex> lk(mu_);
  return level_;
}

CircuitBreaker::Counters CircuitBreaker::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::vector<BreakerTransition> CircuitBreaker::transitions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_;
}

}  // namespace af
