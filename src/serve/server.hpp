// Fault-contained concurrent serving core over InferenceSession.
//
// The process-survival contract: nothing a client can submit — a malformed
// tensor, a poisoned input, a fault storm tripping ABFT on every forward, a
// stuck worker — may kill the server. Every failure is a typed FaultError
// kind delivered either synchronously from submit() (admission control) or
// through the request's future (execution-time faults), and every degrade
// decision is visible in ServerStats / HealthReport.
//
// Architecture (DESIGN.md §13):
//
//   submit() --admission--> ShardedBoundedQueue --pop--> worker pool
//     |  queue full   -> throw FaultError(kOverloaded)      |
//     |  breaker open -> throw FaultError(kCircuitOpen)     v
//     |  draining     -> throw FaultError(kShutdown)   InferenceSession
//     |                                                (one per worker,
//     +-- tenant CircuitBreaker picks the ladder level  arena pre-planned,
//         and marks half-open probes                    serial-pinned)
//
//   watchdog thread: scans worker heartbeats; a worker wedged past the
//   timeout has its in-flight request failed typed (kWorkerWedged) and a
//   replacement worker spawned; the wedged thread retires itself when (if)
//   its forward ever returns.
//
// Each worker executes forwards under a ScopedSerialExecution pin: the
// whole forward runs inline on the worker's thread in the fixed chunk
// order, so concurrent workers neither contend on the shared pool nor
// perturb each other's bits — response payloads are a pure function of the
// request (the determinism contract serve_loadgen --verify enforces across
// AF_THREADS).
//
// Deadlines are enforced twice: an expired request popped from the queue is
// shed before the forward (kDeadlineExceeded, never executed), and a
// response finishing past its deadline is failed typed rather than
// silently returned stale. Recoverable FaultErrors (the ABFT/guard ladder
// kinds) are retried with exponential backoff inside the remaining
// deadline budget; malformed-input and storage kinds fail immediately.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/hw/fault_hook.hpp"
#include "src/runtime/decode.hpp"
#include "src/runtime/session.hpp"
#include "src/serve/breaker.hpp"
#include "src/serve/queue.hpp"
#include "src/serve/stats.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/fault.hpp"

namespace af {

/// Fault kinds the retry loop may re-execute: transient compute-ladder
/// symptoms. Malformed requests and at-rest corruption are deterministic —
/// retrying cannot help — and the serving-control kinds are not execution
/// faults at all.
inline bool fault_kind_recoverable(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNonFinite:
    case FaultKind::kRangeViolation:
    case FaultKind::kChecksumMismatch:
    case FaultKind::kAccumulatorOverflow:
    case FaultKind::kUncorrectable:
      return true;
    case FaultKind::kMalformedInput:
    case FaultKind::kStorageCorruption:
    case FaultKind::kOverloaded:
    case FaultKind::kDeadlineExceeded:
    case FaultKind::kCircuitOpen:
    case FaultKind::kWorkerWedged:
    case FaultKind::kShutdown:
      return false;
  }
  return false;
}

struct RetryConfig {
  int max_retries = 2;  ///< re-executions after the first attempt
  /// First backoff sleep; attempt k sleeps base * 2^k, always clipped to
  /// the request's remaining deadline budget. 0 disables sleeping (tests).
  std::chrono::microseconds backoff_base{200};
};

struct TenantConfig {
  std::string name;
  /// Resilience policies from most protected to most degraded; the
  /// breaker's closed levels index into this ladder.
  std::vector<ResiliencePolicy> ladder{ResiliencePolicy::kAbftGuard,
                                       ResiliencePolicy::kGuard};
  /// Guard driving the kGuard/kAbftGuard policies (nullptr = ctx default).
  const LayerGuard* guard = nullptr;
  /// Attach the worker's PeFaultHook (ServerConfig::mac_hook_factory) to
  /// this tenant's ABFT forwards — the seeded fault-storm seam.
  bool use_mac_hook = false;
  BreakerConfig breaker;
  RetryConfig retry;
  /// Applied when a request carries no deadline; 0 = no deadline.
  std::chrono::microseconds default_deadline{0};
};

struct Request {
  std::string tenant;
  Tensor input;
  /// Time budget from submission; 0 = tenant default.
  std::chrono::microseconds deadline{0};
};

/// What a decode-stream request asks the server to do.
enum class DecodeOp {
  kOpen,   ///< build a StreamDecoder, run the prefill on `src`
  kStep,   ///< advance one token from `last_token`
  kClose,  ///< free the stream's KV cache state
};

/// One request against a decode stream. Streams are keyed per tenant by
/// `stream` — two tenants never collide on an id, and shedding or a fault
/// frees exactly one stream's cache.
struct DecodeRequest {
  std::string tenant;
  std::string stream;  ///< caller-chosen stream id, unique per tenant
  DecodeOp op = DecodeOp::kStep;
  std::vector<std::int64_t> src;   ///< kOpen: source token ids
  std::int64_t last_token = -1;    ///< kStep: last emitted token
  /// Time budget from submission; 0 = tenant default. A step shed or
  /// finishing past its deadline evicts the whole stream: a sequence with
  /// a hole in it cannot be continued, so its cache is freed immediately.
  std::chrono::microseconds deadline{0};
};

/// Adaptive micro-batching (DESIGN.md §14). A worker that popped a request
/// keeps coalescing same-tenant, shape-compatible requests until the batch
/// is full, the coalesce window closes, or waiting any longer would risk a
/// member's deadline — the wait bound is
///   min(pop_time + coalesce_window, tightest member deadline - margin)
/// so coalescing never converts an on-time request into a late one. The
/// batch runs as ONE packed forward; rows are independent in every kernel
/// on the path, so each member's response is bit-identical to its serial
/// single-request execution (enforced in tests and serve_loadgen --verify).
struct BatchConfig {
  /// Max requests coalesced into one forward. 1 disables batching: the
  /// worker loop is then byte-for-byte the PR-8 single-request path.
  int max_batch = 1;
  /// How long a worker holding a non-full batch waits for more work.
  std::chrono::microseconds coalesce_window{0};
  /// Safety margin subtracted from the tightest member deadline when
  /// bounding the coalesce wait (covers pack + forward + scatter time).
  std::chrono::microseconds deadline_margin{1000};
  /// Activation rows to pre-plan each worker session at per resilience
  /// policy (typically max_batch * rows-per-request): the planning forward
  /// runs on a zero tensor at this row count, so every subsequent batch at
  /// or below it replays through the consolidated arena with zero
  /// steady-state heap allocations. 0 = plan lazily from observed shapes.
  std::int64_t plan_rows = 0;
};

struct Response {
  bool ok = false;
  FaultKind error_kind = FaultKind::kUncorrectable;  ///< valid when !ok
  std::string error;
  Tensor output;  ///< owned copy, valid when ok
  std::uint64_t id = 0;
  int retries = 0;
  int breaker_level = 0;  ///< ladder level the request executed at
  ResiliencePolicy policy = ResiliencePolicy::kNone;
  bool probe = false;     ///< executed as a half-open probe
  /// Completed, but the resilience ladder intervened (scrubbed/clamped/
  /// zero-degraded values, ABFT repairs) or the breaker had stepped the
  /// tenant down the ladder.
  bool degraded = false;
  std::chrono::microseconds queue_us{0};  ///< admission -> execution start
  std::chrono::microseconds total_us{0};  ///< admission -> completion
  /// Requests in the forward that produced this response (1 = ran solo).
  int batch_size = 1;
  /// Time the executing worker spent widening this response's batch.
  std::chrono::microseconds coalesce_us{0};
  /// Decode responses: the token emitted by this step (kOpen returns the
  /// stream's BOS token — the value to feed the first kStep).
  std::int64_t token = -1;
};

struct WatchdogConfig {
  bool enabled = true;
  std::chrono::milliseconds check_interval{5};
  /// An in-flight request older than this on a silent worker is failed
  /// typed and its worker replaced.
  std::chrono::milliseconds wedge_timeout{1000};
};

struct ServerConfig {
  int workers = 2;
  std::int64_t queue_capacity = 64;
  int queue_shards = 4;
  WatchdogConfig watchdog;
  BatchConfig batch;
  /// Per-worker fault hook (a seeded FaultInjector in the storm tests and
  /// the loadgen fault arm). Owned by the worker; one instance per worker
  /// so injection streams never race.
  std::function<std::unique_ptr<PeFaultHook>(int worker)> mac_hook_factory;
  /// Builds the StreamDecoder behind each decode stream (kOpen calls it
  /// once per stream). Decoders for different streams may be stepped
  /// concurrently by different workers, so the factory must hand out
  /// decoders that are safe side by side — same contract as
  /// ForwardFactory: replicate mutable model state, or share immutable
  /// state only. Unset = submit_decode rejects typed (kMalformedInput).
  std::function<std::unique_ptr<StreamDecoder>()> decoder_factory;
};

class InferenceServer {
 public:
  /// Builds the model forward a worker serves. Called once per worker
  /// (including watchdog replacements) with the worker's index; the
  /// returned closure must be safe to run on that worker's thread
  /// concurrently with the other workers' closures (give each worker its
  /// own model replica, or share immutable state only).
  using ForwardFactory =
      std::function<InferenceSession::ForwardFn(int worker)>;

  InferenceServer(ForwardFactory factory, ServerConfig cfg);
  ~InferenceServer();  ///< graceful drain (shutdown())

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Registers a tenant before traffic. Unknown-tenant submissions are
  /// rejected typed (kMalformedInput).
  void add_tenant(TenantConfig cfg);

  /// Admission control. Returns the future carrying the typed Response, or
  /// throws fail-fast:
  ///   FaultError(kOverloaded)  — queue at capacity
  ///   FaultError(kCircuitOpen) — tenant breaker rejecting
  ///   FaultError(kShutdown)    — server draining
  ///   FaultError(kMalformedInput) — unregistered tenant
  std::future<Response> submit(Request req);

  /// Admission control for decode-stream requests — same synchronous
  /// typed rejections as submit(), plus FaultError(kMalformedInput) when
  /// no decoder_factory is configured or the stream id is empty. Decode
  /// requests ride the same queue and worker pool as batch requests but
  /// are never coalesced and never retried: a step is stateful (it
  /// appends to the stream's KV cache), so re-executing one after a fault
  /// could double-append — the stream is evicted instead.
  std::future<Response> submit_decode(DecodeRequest req);

  /// Stops intake, serves every queued request (deadlines still enforced),
  /// joins workers and watchdog, then frees every live decode stream's
  /// cache state. Idempotent.
  void shutdown();

  HealthReport health() const;
  StatsSnapshot stats() const { return stats_.snapshot(); }

  int workers() const;
  std::int64_t queue_depth() const { return queue_.size(); }
  /// Live decode streams currently holding KV cache state.
  std::int64_t decode_streams() const;

  /// Largest per-run heap-allocation count any worker's session reported
  /// after its planning run at each ladder level — 0 proves the arena
  /// zero-steady-state-alloc contract holds under concurrent serving.
  std::int64_t max_steady_state_allocs() const;

 private:
  struct Ticket;
  struct TenantState;
  struct WorkerSlot;
  struct StreamEntry;

  using Clock = std::chrono::steady_clock;

  void worker_main(std::shared_ptr<WorkerSlot> slot);
  void watchdog_main();
  /// Executes one decode ticket (always solo — never coalesced).
  void process_decode(WorkerSlot& slot, const std::shared_ptr<Ticket>& t);
  /// Frees one stream's cache state; returns whether it existed.
  bool evict_stream(const std::string& key);
  /// Widens `batch` (seeded with one popped ticket) with predicate-matching
  /// queue entries until full / window closed / tightest-deadline bound hit.
  /// Returns the time spent waiting.
  std::chrono::microseconds coalesce(
      WorkerSlot& slot, std::vector<std::shared_ptr<Ticket>>& batch);
  void process(WorkerSlot& slot,
               std::vector<std::shared_ptr<Ticket>>& batch,
               std::chrono::microseconds coalesce_us);
  void spawn_worker_locked();
  TenantState* find_tenant(const std::string& name);
  bool complete(const std::shared_ptr<Ticket>& ticket, Response&& r);

  ForwardFactory factory_;
  ServerConfig cfg_;
  ShardedBoundedQueue<std::shared_ptr<Ticket>> queue_;
  ServerStats stats_;

  mutable std::mutex tenants_mu_;
  std::vector<std::unique_ptr<TenantState>> tenants_;

  /// Live decode streams, keyed "<tenant>#<stream>". The map mutex covers
  /// only lookup/insert/erase; each stream's decoder runs under its own
  /// entry mutex so a long prefill never blocks other streams.
  mutable std::mutex streams_mu_;
  std::map<std::string, std::shared_ptr<StreamEntry>> streams_;

  mutable std::mutex workers_mu_;
  std::vector<std::unique_ptr<std::thread>> threads_;
  std::vector<std::shared_ptr<WorkerSlot>> slots_;
  int next_worker_index_ = 0;

  std::thread watchdog_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace af
