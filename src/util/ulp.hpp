// ULP distance between floats, for cross-backend numeric bounds.
//
// Maps each float to the same monotone 64-bit integer line used by the
// NearestLut key (sign-magnitude -> biased order) and takes the absolute
// difference: adjacent representable floats are 1 apart, +0.0f and -0.0f
// are 0 apart (numerically equal), and the distance is symmetric across
// zero. NaN on either side is only zero-distance against another NaN.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

namespace af {

/// |a - b| measured in ULPs at scale `norm`: multiples of 2^-24 * norm,
/// the half-ULP of a value of magnitude `norm`. This is the unit of
/// kGemmBackendUlpTol (src/kernels/backend.hpp), with `norm` the L1 norm
/// of the dot product sum_k |a_k * b_k| — the backward-error scale an
/// accumulation chain's rounding is actually bounded by. A zero norm means
/// an empty/all-zero reduction: both sides must agree exactly.
inline double ulp_at_scale(float a, float b, double norm) {
  const double diff =
      a > b ? static_cast<double>(a) - b : static_cast<double>(b) - a;
  if (diff == 0.0) return 0.0;
  if (norm <= 0.0) return std::numeric_limits<double>::infinity();
  return diff / (norm * 0x1p-24);
}

inline std::uint64_t ulp_distance(float a, float b) {
  const bool a_nan = a != a;
  const bool b_nan = b != b;
  if (a_nan || b_nan) {
    return (a_nan && b_nan) ? 0 : ~std::uint64_t{0};
  }
  const auto rank = [](float x) -> std::int64_t {
    std::uint32_t u = 0;
    std::memcpy(&u, &x, sizeof(u));
    const std::int64_t mag = static_cast<std::int64_t>(u & 0x7fffffffu);
    return (u & 0x80000000u) ? -mag : mag;  // +0 and -0 both rank 0
  };
  const std::int64_t ra = rank(a);
  const std::int64_t rb = rank(b);
  return static_cast<std::uint64_t>(ra > rb ? ra - rb : rb - ra);
}

}  // namespace af
