// Typed runtime-fault vocabulary shared by the hardware model and the
// resilience layer.
//
// AF_CHECK / af::Error report *programmer* errors (shape mismatches, bad
// configs) and should abort the computation. A soft error detected at
// inference time is different: it is an expected deployment event that a
// recovery policy wants to catch, classify, and repair. FaultError is that
// catchable channel — it carries the site (layer / PE name) and the failure
// kind, so a guard can decide between correct, recompute and degrade
// without string-matching what() text. It lives in src/util so src/hw can
// throw it without depending on src/resilience.
#pragma once

#include <string>

#include "src/util/check.hpp"

namespace af {

/// What a runtime detector observed.
enum class FaultKind {
  kNonFinite,            ///< NaN or Inf surfaced in an activation tensor
  kRangeViolation,       ///< value outside the calibrated plausibility bound
  kChecksumMismatch,     ///< ABFT row/column checksum disagreement
  kAccumulatorOverflow,  ///< PE accumulator left its register invariant
  kMalformedInput,       ///< external data violates its declared structure
                         ///< (bad file, mismatched corpus, invalid spec)
  kStorageCorruption,    ///< at-rest bytes disagree with their CRC/parity
                         ///< sidecar (torn write, bit rot in a snapshot)
  kUncorrectable,        ///< detected, but every repair avenue is exhausted
  kOverloaded,           ///< serving queue full; request rejected at admission
  kDeadlineExceeded,     ///< request shed before, or stale after, its deadline
  kCircuitOpen,          ///< tenant breaker open; request rejected unexecuted
  kWorkerWedged,         ///< watchdog failed a request stuck on a dead worker
  kShutdown,             ///< server draining; no new work accepted
};

/// Number of FaultKind values — sized for per-kind counter arrays. Keep in
/// lockstep with the enum above.
inline constexpr int kFaultKindCount = 12;

/// constexpr so switch completeness is enforceable at compile time: the
/// fault test static_asserts that every kind below kFaultKindCount maps to
/// a real name and only out-of-range casts fall through to "unknown".
inline constexpr const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNonFinite: return "non-finite";
    case FaultKind::kRangeViolation: return "range-violation";
    case FaultKind::kChecksumMismatch: return "checksum-mismatch";
    case FaultKind::kAccumulatorOverflow: return "accumulator-overflow";
    case FaultKind::kMalformedInput: return "malformed-input";
    case FaultKind::kStorageCorruption: return "storage-corruption";
    case FaultKind::kUncorrectable: return "uncorrectable";
    case FaultKind::kOverloaded: return "overloaded";
    case FaultKind::kDeadlineExceeded: return "deadline-exceeded";
    case FaultKind::kCircuitOpen: return "circuit-open";
    case FaultKind::kWorkerWedged: return "worker-wedged";
    case FaultKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// Strongest remedy a guarded compute path is allowed to apply. Each level
/// includes everything below it, forming the detect -> correct -> recompute
/// -> degrade escalation ladder (see DESIGN.md):
///  * kDetect: observe and record only; never modify data, propagate faults
///    (and throw FaultError where the datapath cannot continue).
///  * kCorrect: additionally apply exact single-error correction where a
///    checksum localizes the fault; anything wider still escalates.
///  * kRecompute: additionally retry the affected computation within a
///    bounded budget; persistent faults still escalate.
///  * kDegradeToZero: never crash — after the budget is exhausted, scrub the
///    affected results to zero (exact 0 is representable in every format of
///    the evaluation, so the damage is bounded).
enum class RecoveryPolicy {
  kDetect,
  kCorrect,
  kRecompute,
  kDegradeToZero,
};

inline constexpr const char* recovery_policy_name(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kDetect: return "detect";
    case RecoveryPolicy::kCorrect: return "correct";
    case RecoveryPolicy::kRecompute: return "recompute";
    case RecoveryPolicy::kDegradeToZero: return "degrade-to-zero";
  }
  return "unknown";
}

/// Catchable runtime-fault exception. Derives from af::Error so existing
/// EXPECT_THROW(..., Error) call sites keep working; recovery code catches
/// FaultError specifically and lets programmer errors abort as before.
class FaultError : public Error {
 public:
  FaultError(std::string layer, FaultKind kind, const std::string& detail)
      : Error("fault in " + layer + " [" +
              std::string(fault_kind_name(kind)) + "]: " + detail),
        layer_(std::move(layer)),
        kind_(kind) {}

  const std::string& layer() const { return layer_; }
  FaultKind kind() const { return kind_; }

 private:
  std::string layer_;
  FaultKind kind_;
};

}  // namespace af
