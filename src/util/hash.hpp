// FNV-1a fingerprints for bit-exactness checks.
//
// The determinism CI job and micro_parallel compare outputs produced under
// different AF_THREADS settings by hashing raw bytes: any single ULP of
// divergence changes the digest. Not a cryptographic hash — just a stable,
// dependency-free fingerprint.
#pragma once

#include <cstdint>
#include <string>

namespace af {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte span.
/// Unlike FNV-1a this detects any burst shorter than 32 bits with
/// certainty, which is what the snapshot container's per-section integrity
/// check wants: a torn write or a localized flip must never verify.
inline std::uint32_t crc32(const void* data, std::size_t size,
                           std::uint32_t crc = 0) {
  static const auto kTable = [] {
    struct Table { std::uint32_t e[256]; } t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t.e[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable.e[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

/// Fixed-width lowercase hex, for printing digests in diffable output.
inline std::string digest_hex(std::uint64_t h) {
  static const char* kHex = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return s;
}

}  // namespace af
