#include "src/util/rng.hpp"

#include <cmath>

namespace af {

float Pcg32::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box–Muller transform; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-12);
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_ = static_cast<float>(r * std::sin(theta));
  has_cached_ = true;
  return static_cast<float>(r * std::cos(theta));
}

}  // namespace af
