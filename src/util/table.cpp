#include "src/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace af {

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream out;
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  if (total < title_.size()) total = title_.size();

  out << title_ << '\n' << std::string(total, '=') << '\n';
  if (!header_.empty()) {
    emit(header_);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_sig(double v, int digits) {
  char buf[64];
  if (v != 0.0 && (std::fabs(v) < 1e-3 || std::fabs(v) >= 1e6)) {
    std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  }
  return buf;
}

}  // namespace af
