// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (weight init, synthetic data,
// noise injection) flows through Pcg32 so every experiment is exactly
// reproducible from a seed. We deliberately avoid std::mt19937 /
// std::normal_distribution because their outputs are not guaranteed to be
// identical across standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace af {

/// PCG32 (O'Neill, 2014): small, fast, statistically strong 32-bit generator.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform 32-bit integer.
  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound) {
    // Debiased modulo (Lemire-style rejection).
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Standard normal via Box–Muller (deterministic, stateless between calls
  /// except for the cached second deviate).
  float normal();

  /// Normal with the given mean and standard deviation.
  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = next_below(static_cast<std::uint32_t>(i + 1));
      std::swap(v[i], v[j]);
    }
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  bool has_cached_ = false;
  float cached_ = 0.0f;
};

}  // namespace af
