// Deterministic shared thread pool for the tensor/quantizer hot paths.
//
// The contract that makes parallel results safe to use everywhere golden
// outputs matter (PTQ/QAR sweeps, the resilience bit-flip tables):
//
//  * Chunk boundaries are a pure function of (begin, end, grain) — never of
//    the thread count. Chunk c covers [begin + c*grain, min(begin+(c+1)*grain,
//    end)), so the same range always splits the same way.
//  * parallel_for bodies write disjoint state per chunk (the callers
//    guarantee this: row panels, element ranges, batch images, trials).
//  * parallel_reduce stores one partial per chunk and combines them in
//    ascending chunk order on the calling thread, so a non-associative
//    floating-point combine still yields one fixed association.
//
// Together these make every result bit-identical for any AF_THREADS value,
// including the serial fallback (AF_THREADS=1 runs the identical chunk loop
// inline). Nested calls from inside a worker run serially on that worker, so
// composite kernels (conv2d batch -> matmul) neither deadlock nor
// oversubscribe.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/util/check.hpp"

namespace af {

/// Worker count the pool is configured for (>= 1). Initialized on first use
/// from the AF_THREADS environment variable; when unset or 0, uses the
/// hardware concurrency.
int num_threads();

/// Reconfigures the pool. n >= 1 is an explicit count (1 = exact serial
/// execution); n == 0 re-resolves to the hardware concurrency. Takes effect
/// on the next parallel call; must not be called from inside a parallel body.
void set_num_threads(int n);

/// True when the calling thread is a pool worker (nested parallel calls run
/// serially inline).
bool in_parallel_region();

/// True when the calling thread carries a ScopedSerialExecution pin.
bool serial_execution_pinned();

/// Thread-local serial pin: while alive, every parallel_for/parallel_reduce
/// issued from this thread runs its (thread-count-independent) chunk loop
/// inline on the calling thread, never touching the shared pool or its
/// global configuration. This is how a concurrent serving worker executes a
/// whole model forward on its own thread: N workers each make progress
/// independently instead of serializing on the pool's top-level run mutex,
/// and the results are bit-identical by the fixed-chunking contract.
/// Nestable; restores the previous pin state on destruction.
class ScopedSerialExecution {
 public:
  ScopedSerialExecution();
  ~ScopedSerialExecution();
  ScopedSerialExecution(const ScopedSerialExecution&) = delete;
  ScopedSerialExecution& operator=(const ScopedSerialExecution&) = delete;

 private:
  bool previous_;
};

/// Number of fixed-size chunks the range [begin, end) splits into: a pure
/// function of the range and grain, never of the thread count.
inline std::int64_t num_chunks(std::int64_t begin, std::int64_t end,
                               std::int64_t grain) {
  AF_CHECK(grain > 0, "parallel grain must be positive");
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

/// Runs body(chunk_begin, chunk_end) for every chunk of [begin, end).
/// Chunks may execute on any thread in any order; the body must only write
/// state disjoint per chunk. Exceptions thrown by the body are rethrown on
/// the calling thread (first one wins; remaining chunks still drain).
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Chunked map-reduce with a deterministic combine order: map(chunk_begin,
/// chunk_end) produces one partial per chunk, and partials are folded into
/// `init` in ascending chunk order on the calling thread. T must be
/// default-constructible and movable.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T init, Map&& map, Combine&& combine) {
  const std::int64_t chunks = num_chunks(begin, end, grain);
  if (chunks == 0) return init;
  std::vector<T> partials(static_cast<std::size_t>(chunks));
  parallel_for(begin, end, grain,
               [&](std::int64_t b, std::int64_t e) {
                 partials[static_cast<std::size_t>((b - begin) / grain)] =
                     map(b, e);
               });
  T acc = std::move(init);
  for (T& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace af
