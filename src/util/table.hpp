// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary reproduces one table or figure from the paper; this
// helper prints aligned rows so the output can be compared to the paper
// side by side (and grepped / parsed by scripts).
#pragma once

#include <string>
#include <vector>

namespace af {

/// Column-aligned text table with a title, header row and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table; pads every cell to the widest entry of its column.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places ("3.142").
std::string fmt_fixed(double v, int digits);

/// Formats a double with `digits` significant figures ("3.14e-05" style when
/// small). Used for RMS-error tables.
std::string fmt_sig(double v, int digits);

}  // namespace af
