// Error-handling helpers shared by every module.
//
// The library reports precondition violations by throwing af::Error so that
// tests can assert on failure modes without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace af {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

}  // namespace af

/// Checks a precondition; throws af::Error with location info on failure.
#define AF_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::af::fail(std::string(__FILE__) + ":" + std::to_string(__LINE__) +    \
                 ": check failed: " #cond " — " + (msg));                    \
    }                                                                        \
  } while (0)
