#include "src/util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace af {
namespace {

thread_local bool tls_in_worker = false;
thread_local bool tls_serial_pin = false;

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int resolve_thread_count(int n) {
  if (n == 0) return hardware_threads();
  AF_CHECK(n >= 1, "thread count must be >= 1 (or 0 for auto)");
  return n;
}

int env_thread_count() {
  const char* s = std::getenv("AF_THREADS");
  if (s == nullptr || *s == '\0') return hardware_threads();
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  AF_CHECK(end != s && *end == '\0' && v >= 0 && v <= 4096,
           "AF_THREADS must be an integer in [0, 4096]");
  return resolve_thread_count(static_cast<int>(v));
}

// One in-flight chunk range. Workers claim chunks off the shared atomic
// counter; `completed` reaching `chunks` is the only completion signal, so
// the caller never depends on which worker ran what. Kept alive by
// shared_ptr: a worker that wakes late may still probe a drained job after
// run() returned, and must only ever touch the atomics when it does.
struct Job {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t chunks = 0;
  const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  std::mutex error_mu;
  std::exception_ptr error;

  void drain() {
    std::int64_t c;
    while ((c = next.fetch_add(1, std::memory_order_relaxed)) < chunks) {
      const std::int64_t b = begin + c * grain;
      const std::int64_t e = std::min(end, b + grain);
      try {
        (*body)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mu);
        if (!error) error = std::current_exception();
      }
      completed.fetch_add(1, std::memory_order_release);
    }
  }
};

class Pool {
 public:
  static Pool& get() {
    static Pool pool;
    return pool;
  }

  int threads() {
    std::lock_guard<std::mutex> lk(config_mu_);
    return target_;
  }

  void set_threads(int n) {
    std::lock_guard<std::mutex> run_lk(run_mu_);
    shutdown_workers();
    std::lock_guard<std::mutex> lk(config_mu_);
    target_ = resolve_thread_count(n);
  }

  void run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           const std::function<void(std::int64_t, std::int64_t)>& body) {
    const std::int64_t chunks = num_chunks(begin, end, grain);
    if (chunks == 0) return;

    // Serial fallback paths run the identical chunk loop inline: one
    // configured thread, a single chunk, a nested call from a worker, or a
    // thread holding a ScopedSerialExecution pin.
    const int nt = threads();
    if (nt == 1 || chunks == 1 || tls_in_worker || tls_serial_pin) {
      Job job;
      job.begin = begin;
      job.end = end;
      job.grain = grain;
      job.chunks = chunks;
      job.body = &body;
      job.drain();
      if (job.error) std::rethrow_exception(job.error);
      return;
    }

    std::lock_guard<std::mutex> run_lk(run_mu_);
    spawn_workers(nt - 1);

    auto job = std::make_shared<Job>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->chunks = chunks;
    job->body = &body;
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = job;
      ++generation_;
    }
    cv_work_.notify_all();

    // The caller is a full participant. It drains flagged as in-worker so a
    // body that nests parallel_for runs serially instead of re-entering
    // run_mu_ (which this thread holds).
    tls_in_worker = true;
    job->drain();
    tls_in_worker = false;
    if (job->completed.load(std::memory_order_acquire) < chunks) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] {
        return job->completed.load(std::memory_order_acquire) >= chunks;
      });
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  Pool() {
    std::lock_guard<std::mutex> lk(config_mu_);
    target_ = env_thread_count();
  }

  ~Pool() { shutdown_workers(); }

  void spawn_workers(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    while (static_cast<int>(workers_.size()) < n) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void shutdown_workers() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = false;
  }

  void worker_loop() {
    tls_in_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stopping_ || generation_ != seen; });
        if (stopping_) return;
        seen = generation_;
        job = job_;
      }
      if (!job) continue;
      job->drain();
      if (job->completed.load(std::memory_order_acquire) >= job->chunks) {
        // Empty critical section: orders this notify against the caller's
        // predicate-check-then-sleep so the final wakeup cannot be lost.
        { std::lock_guard<std::mutex> lk(mu_); }
        cv_done_.notify_all();
      }
    }
  }

  std::mutex config_mu_;
  int target_ = 1;

  std::mutex run_mu_;  // serializes top-level parallel regions

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
};

}  // namespace

int num_threads() { return Pool::get().threads(); }

void set_num_threads(int n) {
  AF_CHECK(!tls_in_worker, "set_num_threads inside a parallel region");
  Pool::get().set_threads(n);
}

bool in_parallel_region() { return tls_in_worker; }

bool serial_execution_pinned() { return tls_serial_pin; }

ScopedSerialExecution::ScopedSerialExecution() : previous_(tls_serial_pin) {
  tls_serial_pin = true;
}

ScopedSerialExecution::~ScopedSerialExecution() {
  tls_serial_pin = previous_;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  Pool::get().run(begin, end, grain, body);
}

}  // namespace af
