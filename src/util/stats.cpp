#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace af {
namespace {

// Linear-interpolated quantile of a sorted vector, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

BoxStats box_stats(std::vector<double> values) {
  AF_CHECK(!values.empty(), "box_stats on empty vector");
  std::sort(values.begin(), values.end());
  BoxStats s;
  s.n = values.size();
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.50);
  s.q3 = quantile_sorted(values, 0.75);
  s.mean = mean_of(values);
  return s;
}

double mean_of(const std::vector<double>& values) {
  AF_CHECK(!values.empty(), "mean of empty vector");
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

}  // namespace af
