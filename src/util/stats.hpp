// Small descriptive-statistics helpers used by the Figure-4 boxplot bench
// and by tests that reason about distributions.
#pragma once

#include <cstddef>
#include <vector>

namespace af {

/// Five-number summary plus mean, as drawn in a boxplot.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  std::size_t n = 0;
};

/// Computes the summary of `values`. Quartiles use linear interpolation
/// between order statistics (the same convention as numpy's default).
/// Throws af::Error when `values` is empty.
BoxStats box_stats(std::vector<double> values);

/// Arithmetic mean; throws on empty input.
double mean_of(const std::vector<double>& values);

}  // namespace af
