// Encoder-decoder Transformer for machine translation (Vaswani et al.,
// 2017) — the wide-weight-distribution model of the paper's evaluation.
//
// Pre-LayerNorm blocks (norm before attention/FFN, residual around both),
// sinusoidal positional encodings, GELU feed-forward. Scaled down from the
// paper's 93M-parameter WMT model to a size trainable in seconds on the
// synthetic translation task while keeping every architectural ingredient
// that matters for quantization behaviour (LayerNorm, attention, deep
// residual stacks).
#pragma once

#include <memory>
#include <vector>

#include "src/data/metrics.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/attention.hpp"
#include "src/nn/embedding.hpp"
#include "src/nn/layernorm.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/quant.hpp"
#include "src/runtime/decode.hpp"

namespace af {

class TransformerDecoder;

struct TransformerConfig {
  std::int64_t src_vocab = 24;
  std::int64_t tgt_vocab = 24;
  std::int64_t d_model = 64;
  std::int64_t num_heads = 4;
  std::int64_t d_ffn = 128;
  std::int64_t enc_layers = 2;
  std::int64_t dec_layers = 2;
  std::int64_t max_len = 48;
};

class TransformerMT {
 public:
  TransformerMT(const TransformerConfig& cfg, std::uint64_t seed);

  /// Teacher-forced forward. src and tgt_in are batches of equal-length
  /// token sequences (src rows may be padded with pad_id at the tail).
  /// Returns logits [B * T_tgt, tgt_vocab].
  Tensor forward(const std::vector<TokenSeq>& src,
                 const std::vector<TokenSeq>& tgt_in, std::int64_t pad_id);

  /// Adjoint of forward; accumulates parameter gradients.
  void backward(const Tensor& dlogits);

  /// Greedy autoregressive decode of one source sequence.
  TokenSeq greedy_decode(const TokenSeq& src, std::int64_t pad_id,
                         std::int64_t bos, std::int64_t eos,
                         std::int64_t max_steps);

  std::vector<Parameter*> parameters();
  void zero_grad();
  void clear_caches();

  ActQuant& act_quant() { return act_quant_; }
  const TransformerConfig& config() const { return cfg_; }

  /// Calibration-time max-abs of each decoder layer's projected K/V
  /// activations — what a quantized KV cache recalibrates its per-layer
  /// exp_bias from. Recorded while `set_kv_range_recording(true)` is in
  /// effect over teacher-forced forwards (calibrate_transformer_kv).
  struct KvRanges {
    float self_k = 0.0f, self_v = 0.0f;
    float cross_k = 0.0f, cross_v = 0.0f;
  };
  void set_kv_range_recording(bool on);
  KvRanges dec_kv_ranges(std::int64_t layer) const;

 private:
  friend class TransformerDecoder;
  struct EncoderBlock {
    EncoderBlock(const TransformerConfig& cfg, Pcg32& rng, int index);
    // x: [B, T, D]; lengths: valid source lengths per batch row.
    Tensor forward(const Tensor& x, const std::vector<std::int64_t>& lengths);
    // Context-driven inference forward: same math, no adjoint caches.
    Tensor forward(const Tensor& x, const std::vector<std::int64_t>& lengths,
                   ExecutionContext& ctx);
    Tensor backward(const Tensor& dy);
    std::vector<Module*> modules();

    LayerNorm ln1, ln2;
    MultiHeadAttention attn;
    Linear fc1, fc2;
    GELU gelu;
  };

  struct DecoderBlock {
    DecoderBlock(const TransformerConfig& cfg, Pcg32& rng, int index);
    // x: [B, Tt, D]; enc: [B, Ts, D].
    Tensor forward(const Tensor& x, const Tensor& enc,
                   const std::vector<std::int64_t>& src_lengths);
    // Returns (dx, d_enc).
    std::pair<Tensor, Tensor> backward(const Tensor& dy);
    std::vector<Module*> modules();

    LayerNorm ln1, ln2, ln3;
    MultiHeadAttention self_attn, cross_attn;
    Linear fc1, fc2;
    GELU gelu;
  };

  // Embedding + scaled sinusoidal position, flattened ids -> [B*T, D].
  Tensor embed(Embedding& emb, const std::vector<TokenSeq>& batch);
  Tensor embed(Embedding& emb, const std::vector<TokenSeq>& batch,
               ExecutionContext& ctx);

  // Context-driven encoder pass (embed -> blocks -> final LN, with the
  // same act_quant sites as the teacher-forced path): [B, Ts, D].
  Tensor encode(const std::vector<TokenSeq>& src,
                const std::vector<std::int64_t>& lengths,
                ExecutionContext& ctx);

  std::vector<Module*> all_modules();

  TransformerConfig cfg_;
  Embedding src_emb_;
  Embedding tgt_emb_;
  std::vector<EncoderBlock> enc_blocks_;
  std::vector<DecoderBlock> dec_blocks_;
  LayerNorm enc_final_;
  LayerNorm dec_final_;
  Linear out_proj_;
  Tensor pos_table_;  // [max_len, D] sinusoidal encodings
  ActQuant act_quant_;

  // Saved between forward and backward.
  struct StepCtx {
    std::int64_t b = 0, ts = 0, tt = 0;
    std::vector<std::int64_t> src_lengths;
  };
  std::vector<StepCtx> ctx_;
};

/// How a TransformerDecoder stores its KV cache.
struct KvCacheFormat {
  bool quantized = false;  ///< false = fp32 rows (bit-identical path)
  FormatKind kind = FormatKind::kAdaptivFloat;
  int bits = 8;
};

/// Incremental decoder over a TransformerMT: a DecodeSession whose hooks
/// run the model's context entry points one timestep at a time against
/// per-layer KvStates (self-attention caches appended per step,
/// cross-attention caches prefilled once per sequence).
///
/// With fp32 KV the emitted logits are bit-identical to full-recompute
/// decoding (teacher-forced forward over the growing prefix) whenever the
/// ActQuant mode is kOff or kApply over calibrated sites — see DESIGN.md
/// §15 for the contract. With `kv.quantized`, K/V rows are stored as
/// packed codes through per-layer codecs whose exp_bias is recalibrated
/// from the ranges recorded by calibrate_transformer_kv; constructing a
/// quantized decoder from an uncalibrated model is a typed error.
class TransformerDecoder {
 public:
  struct Options {
    std::int64_t batch = 1;      ///< decode lanes (beam width)
    std::int64_t max_steps = 0;  ///< KV plan; 0 = model max_len
    KvCacheFormat kv;
    ExecutionContext ctx;
  };

  TransformerDecoder(TransformerMT& model, Options opts);
  /// Default options: one lane, fp32 KV planned to the model's max_len.
  explicit TransformerDecoder(TransformerMT& model);

  /// Starts decoding `src` (replicated across all lanes): runs the encoder
  /// and the cross-attention prefill, resets the self-attention caches.
  void begin(const TokenSeq& src, std::int64_t pad_id);

  /// Feeds the last emitted token of every lane (size = batch) and returns
  /// the next-token logits [batch, tgt_vocab]. The reference stays valid
  /// (and is overwritten) across steps.
  const Tensor& step(const std::vector<std::int64_t>& last_tokens);

  /// Beam-search lane shuffle: lane r continues the hypothesis that lane
  /// parents[r] held before the call (self-attention caches only — the
  /// cross caches are identical across lanes by construction).
  void reorder(const std::vector<std::size_t>& parents);

  std::int64_t batch() const { return opts_.batch; }
  std::int64_t position() const { return pos_; }
  /// Current KV payload across all layers and lanes.
  std::size_t kv_bytes() const;
  /// KV payload growth per decoded step (self caches; cross is prefilled).
  std::size_t kv_bytes_per_step() const;

  DecodeSession& session() { return *session_; }
  const DecodeSession& session() const { return *session_; }

 private:
  void setup(ExecutionContext& ctx);
  void prefill(ExecutionContext& ctx);
  Tensor decode_step(const std::vector<std::int64_t>& ids,
                     ExecutionContext& ctx);
  Tensor embed_step(const std::vector<std::int64_t>& ids,
                    ExecutionContext& ctx);

  TransformerMT& model_;
  Options opts_;
  std::vector<KvQuantConfig> self_quant_, cross_quant_;
  std::vector<KvState> self_kv_, cross_kv_;
  std::vector<TokenSeq> src_batch_;
  std::vector<std::int64_t> src_lengths_;
  std::int64_t pos_ = 0;
  std::unique_ptr<DecodeSession> session_;  // last: its ctor runs setup()
};

/// Serving-facing adapter: one decode lane of a TransformerDecoder behind
/// the runtime StreamDecoder interface (greedy argmax per step).
class TransformerStreamDecoder final : public StreamDecoder {
 public:
  TransformerStreamDecoder(TransformerMT& model,
                           TransformerDecoder::Options opts,
                           std::int64_t pad_id, std::int64_t bos,
                           std::int64_t eos);

  void open(const std::vector<std::int64_t>& src) override;
  std::int64_t step(std::int64_t last_token) override;
  std::int64_t bos_token() const override { return bos_; }
  std::int64_t eos_token() const override { return eos_; }
  std::size_t cache_bytes() const override { return dec_.kv_bytes(); }

 private:
  TransformerDecoder dec_;
  std::int64_t pad_id_, bos_, eos_;
};

}  // namespace af
