// Encoder-decoder Transformer for machine translation (Vaswani et al.,
// 2017) — the wide-weight-distribution model of the paper's evaluation.
//
// Pre-LayerNorm blocks (norm before attention/FFN, residual around both),
// sinusoidal positional encodings, GELU feed-forward. Scaled down from the
// paper's 93M-parameter WMT model to a size trainable in seconds on the
// synthetic translation task while keeping every architectural ingredient
// that matters for quantization behaviour (LayerNorm, attention, deep
// residual stacks).
#pragma once

#include <memory>
#include <vector>

#include "src/data/metrics.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/attention.hpp"
#include "src/nn/embedding.hpp"
#include "src/nn/layernorm.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/quant.hpp"

namespace af {

struct TransformerConfig {
  std::int64_t src_vocab = 24;
  std::int64_t tgt_vocab = 24;
  std::int64_t d_model = 64;
  std::int64_t num_heads = 4;
  std::int64_t d_ffn = 128;
  std::int64_t enc_layers = 2;
  std::int64_t dec_layers = 2;
  std::int64_t max_len = 48;
};

class TransformerMT {
 public:
  TransformerMT(const TransformerConfig& cfg, std::uint64_t seed);

  /// Teacher-forced forward. src and tgt_in are batches of equal-length
  /// token sequences (src rows may be padded with pad_id at the tail).
  /// Returns logits [B * T_tgt, tgt_vocab].
  Tensor forward(const std::vector<TokenSeq>& src,
                 const std::vector<TokenSeq>& tgt_in, std::int64_t pad_id);

  /// Adjoint of forward; accumulates parameter gradients.
  void backward(const Tensor& dlogits);

  /// Greedy autoregressive decode of one source sequence.
  TokenSeq greedy_decode(const TokenSeq& src, std::int64_t pad_id,
                         std::int64_t bos, std::int64_t eos,
                         std::int64_t max_steps);

  std::vector<Parameter*> parameters();
  void zero_grad();
  void clear_caches();

  ActQuant& act_quant() { return act_quant_; }
  const TransformerConfig& config() const { return cfg_; }

 private:
  struct EncoderBlock {
    EncoderBlock(const TransformerConfig& cfg, Pcg32& rng, int index);
    // x: [B, T, D]; lengths: valid source lengths per batch row.
    Tensor forward(const Tensor& x, const std::vector<std::int64_t>& lengths);
    Tensor backward(const Tensor& dy);
    std::vector<Module*> modules();

    LayerNorm ln1, ln2;
    MultiHeadAttention attn;
    Linear fc1, fc2;
    GELU gelu;
  };

  struct DecoderBlock {
    DecoderBlock(const TransformerConfig& cfg, Pcg32& rng, int index);
    // x: [B, Tt, D]; enc: [B, Ts, D].
    Tensor forward(const Tensor& x, const Tensor& enc,
                   const std::vector<std::int64_t>& src_lengths);
    // Returns (dx, d_enc).
    std::pair<Tensor, Tensor> backward(const Tensor& dy);
    std::vector<Module*> modules();

    LayerNorm ln1, ln2, ln3;
    MultiHeadAttention self_attn, cross_attn;
    Linear fc1, fc2;
    GELU gelu;
  };

  // Embedding + scaled sinusoidal position, flattened ids -> [B*T, D].
  Tensor embed(Embedding& emb, const std::vector<TokenSeq>& batch);

  std::vector<Module*> all_modules();

  TransformerConfig cfg_;
  Embedding src_emb_;
  Embedding tgt_emb_;
  std::vector<EncoderBlock> enc_blocks_;
  std::vector<DecoderBlock> dec_blocks_;
  LayerNorm enc_final_;
  LayerNorm dec_final_;
  Linear out_proj_;
  Tensor pos_table_;  // [max_len, D] sinusoidal encodings
  ActQuant act_quant_;

  // Saved between forward and backward.
  struct StepCtx {
    std::int64_t b = 0, ts = 0, tt = 0;
    std::vector<std::int64_t> src_lengths;
  };
  std::vector<StepCtx> ctx_;
};

}  // namespace af
