#include "src/models/resilience_eval.hpp"

#include <cmath>
#include <utility>

#include "src/data/metrics.hpp"
#include "src/data/vision_task.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/optimizer.hpp"
#include "src/tensor/arena.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

// y = W x + b for a single vector x. Plain double accumulation keeps the
// inference path independent of the training modules, so a weight transform
// affects exactly the multiplies and nothing cached inside a layer.
std::vector<float> affine(const Tensor& w, const Tensor& b,
                          const std::vector<float>& x) {
  const std::int64_t out = w.dim(0), in = w.dim(1);
  AF_CHECK(static_cast<std::int64_t>(x.size()) == in,
           "affine: input size mismatch");
  std::vector<float> y(static_cast<std::size_t>(out));
  for (std::int64_t o = 0; o < out; ++o) {
    double acc = (b.numel() > 0) ? static_cast<double>(b[o]) : 0.0;
    const float* row = w.data() + o * in;
    for (std::int64_t i = 0; i < in; ++i) {
      acc += static_cast<double>(row[i]) * static_cast<double>(x[static_cast<std::size_t>(i)]);
    }
    y[static_cast<std::size_t>(o)] = static_cast<float>(acc);
  }
  return y;
}

std::int64_t argmax(const std::vector<float>& v) {
  std::int64_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = static_cast<std::int64_t>(i);
  }
  return best;
}

Tensor apply_transform(const WeightTransform& transform, const Tensor& w,
                       int layer) {
  if (!transform) return w;
  Tensor out = transform(w, layer);
  AF_CHECK(out.shape() == w.shape(),
           "weight transform must preserve the layer shape");
  return out;
}

// ----- LSTM synthetic sequence task -----------------------------------------

struct SeqTask {
  std::int64_t classes, timesteps, input;
  // Per class and input channel: frequency and phase of a sinusoid.
  std::vector<float> freq;   // [classes * input]
  std::vector<float> phase;  // [classes * input]
  float noise;

  SeqTask(std::int64_t c, std::int64_t t, std::int64_t i, float n,
          Pcg32& rng)
      : classes(c), timesteps(t), input(i), noise(n) {
    freq.resize(static_cast<std::size_t>(c * i));
    phase.resize(static_cast<std::size_t>(c * i));
    for (auto& f : freq) f = rng.uniform(0.3f, 2.2f);
    for (auto& p : phase) p = rng.uniform(0.0f, 6.28318f);
  }

  // One noisy sequence [T, I] of the given class.
  Tensor sample(std::int64_t label, Pcg32& rng) const {
    Tensor x({timesteps, input});
    for (std::int64_t t = 0; t < timesteps; ++t) {
      for (std::int64_t i = 0; i < input; ++i) {
        const std::size_t k = static_cast<std::size_t>(label * input + i);
        const float clean =
            std::sin(freq[k] * static_cast<float>(t) + phase[k]);
        x[t * input + i] = clean + rng.normal(0.0f, noise);
      }
    }
    return x;
  }
};

}  // namespace

// ----- MLP ------------------------------------------------------------------

MlpEvalModel make_mlp_eval_model(std::uint64_t seed, int train_steps,
                                 int eval_images) {
  const std::int64_t kClasses = 10, kSize = 12, kHidden = 64;
  const std::int64_t kInput = kSize * kSize;
  const std::int64_t kBatch = 32;

  VisionTask task(kClasses, /*channels=*/1, kSize, /*noise=*/0.25f, seed);
  Pcg32 rng(seed ^ 0x9e3779b97f4a7c15ULL);

  Linear fc1(kInput, kHidden, rng);
  ReLU relu;
  Linear fc2(kHidden, kClasses, rng);
  Adam opt(collect_parameters({&fc1, &fc2}), 3e-3f);

  for (int step = 0; step < train_steps; ++step) {
    auto batch = task.sample_batch(kBatch, rng);
    Tensor x = batch.images.reshaped({kBatch, kInput});
    Tensor h = relu.forward(fc1.forward(x));
    Tensor logits = fc2.forward(h);
    LossResult loss = softmax_cross_entropy(logits, batch.labels);
    fc1.zero_grad();
    fc2.zero_grad();
    fc1.backward(relu.backward(fc2.backward(loss.dlogits)));
    opt.step();
  }

  MlpEvalModel m;
  m.weights = {fc1.weight().value, fc2.weight().value};
  m.biases = {fc1.bias().value, fc2.bias().value};

  // Fixed held-out set, drawn from a dedicated stream so its contents do not
  // depend on the training schedule.
  Pcg32 eval_rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
  for (int i = 0; i < eval_images; ++i) {
    const std::int64_t label = static_cast<std::int64_t>(
        eval_rng.next_below(static_cast<std::uint32_t>(kClasses)));
    Tensor img = task.sample_image(label, eval_rng);
    m.eval_set.inputs.push_back(img.reshaped({kInput}));
    m.eval_set.labels.push_back(label);
  }
  m.baseline_top1 = eval_mlp_top1(m);
  return m;
}

std::vector<std::int64_t> mlp_predict(const MlpEvalModel& m,
                                      const WeightTransform& transform,
                                      const MatmulFn& matmul_fn) {
  std::vector<Tensor> w(m.weights.size());
  for (std::size_t l = 0; l < m.weights.size(); ++l) {
    w[l] = apply_transform(transform, m.weights[l], static_cast<int>(l));
  }
  std::vector<std::int64_t> preds;
  preds.reserve(m.eval_set.inputs.size());

  if (matmul_fn) {
    // Batched path: all eval inputs as one activation matrix, every layer
    // product through the caller's GEMM (the compute-fault sweep's seam).
    // The activation tensors live in a call-local arena: sweep trials run
    // concurrently on worker threads, so the arena must not be shared.
    Arena arena;
    ArenaScope scope(&arena);
    const auto batch = static_cast<std::int64_t>(m.eval_set.inputs.size());
    const std::int64_t in_dim = w.front().dim(1);
    Tensor act({batch, in_dim});
    for (std::int64_t i = 0; i < batch; ++i) {
      const Tensor& input = m.eval_set.inputs[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < in_dim; ++j) act[i * in_dim + j] = input[j];
    }
    for (std::size_t l = 0; l < w.size(); ++l) {
      act = matmul_fn(act, w[l], static_cast<int>(l));
      if (m.biases[l].numel() > 0) add_row_bias_inplace(act, m.biases[l]);
      if (l + 1 < w.size()) {
        for (std::int64_t i = 0; i < act.numel(); ++i) {
          if (act[i] < 0.0f) act[i] = 0.0f;
        }
      }
    }
    return argmax_rows(act);
  }

  for (const Tensor& input : m.eval_set.inputs) {
    std::vector<float> act = input.vec();
    for (std::size_t l = 0; l < w.size(); ++l) {
      act = affine(w[l], m.biases[l], act);
      if (l + 1 < w.size()) {
        for (float& v : act) v = (v > 0.0f) ? v : 0.0f;
      }
    }
    preds.push_back(argmax(act));
  }
  return preds;
}

double eval_mlp_top1(const MlpEvalModel& m, const WeightTransform& transform,
                     const MatmulFn& matmul_fn) {
  return top1_accuracy(m.eval_set.labels, mlp_predict(m, transform, matmul_fn));
}

// ----- LSTM -----------------------------------------------------------------

LstmEvalModel make_lstm_eval_model(std::uint64_t seed, int train_steps,
                                   int eval_sequences) {
  const std::int64_t kClasses = 6, kT = 12, kInput = 8, kHidden = 24;
  const std::int64_t kBatch = 24;

  Pcg32 task_rng(seed ^ 0xa0761d6478bd642fULL);
  SeqTask task(kClasses, kT, kInput, /*noise=*/0.3f, task_rng);

  Pcg32 rng(seed ^ 0xe7037ed1a0b428dbULL);
  Lstm lstm(kInput, kHidden, /*num_layers=*/1, rng);
  Linear readout(kHidden, kClasses, rng);
  Adam opt(collect_parameters({&lstm, &readout}), 5e-3f);

  for (int step = 0; step < train_steps; ++step) {
    std::vector<std::int64_t> labels(static_cast<std::size_t>(kBatch));
    Tensor x({kT, kBatch, kInput});
    for (std::int64_t n = 0; n < kBatch; ++n) {
      labels[static_cast<std::size_t>(n)] = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint32_t>(kClasses)));
      Tensor seq = task.sample(labels[static_cast<std::size_t>(n)], rng);
      for (std::int64_t t = 0; t < kT; ++t) {
        for (std::int64_t i = 0; i < kInput; ++i) {
          x[(t * kBatch + n) * kInput + i] = seq[t * kInput + i];
        }
      }
    }

    Tensor out = lstm.forward(x);  // [T, B, H]
    Tensor last({kBatch, kHidden});
    for (std::int64_t n = 0; n < kBatch; ++n) {
      for (std::int64_t h = 0; h < kHidden; ++h) {
        last[n * kHidden + h] = out[((kT - 1) * kBatch + n) * kHidden + h];
      }
    }
    Tensor logits = readout.forward(last);
    LossResult loss = softmax_cross_entropy(logits, labels);

    lstm.zero_grad();
    readout.zero_grad();
    Tensor dlast = readout.backward(loss.dlogits);  // [B, H]
    Tensor dout({kT, kBatch, kHidden});             // zero except last step
    for (std::int64_t n = 0; n < kBatch; ++n) {
      for (std::int64_t h = 0; h < kHidden; ++h) {
        dout[((kT - 1) * kBatch + n) * kHidden + h] = dlast[n * kHidden + h];
      }
    }
    lstm.backward(dout);
    opt.step();
  }

  LstmEvalModel m;
  m.input = kInput;
  m.hidden = kHidden;
  m.classes = kClasses;
  m.timesteps = kT;
  auto params = lstm.cell(0).parameters();  // {wx, wh, b}
  m.wx = params[0]->value;
  m.wh = params[1]->value;
  m.b = params[2]->value;
  m.w_out = readout.weight().value;
  m.b_out = readout.bias().value;

  Pcg32 eval_rng(seed ^ 0x589965cc75374cc3ULL);
  for (int i = 0; i < eval_sequences; ++i) {
    const std::int64_t label = static_cast<std::int64_t>(
        eval_rng.next_below(static_cast<std::uint32_t>(kClasses)));
    m.eval_set.inputs.push_back(task.sample(label, eval_rng));
    m.eval_set.labels.push_back(label);
  }
  m.baseline_top1 = eval_lstm_top1(m);
  return m;
}

std::vector<std::int64_t> lstm_predict(const LstmEvalModel& m,
                                       const WeightTransform& transform) {
  const Tensor wx = apply_transform(transform, m.wx, 0);
  const Tensor wh = apply_transform(transform, m.wh, 1);
  const Tensor w_out = apply_transform(transform, m.w_out, 2);
  const std::int64_t H = m.hidden, I = m.input;

  std::vector<std::int64_t> preds;
  preds.reserve(m.eval_set.inputs.size());
  for (const Tensor& seq : m.eval_set.inputs) {
    std::vector<float> h(static_cast<std::size_t>(H), 0.0f);
    std::vector<float> c(static_cast<std::size_t>(H), 0.0f);
    for (std::int64_t t = 0; t < m.timesteps; ++t) {
      std::vector<float> x(seq.data() + t * I, seq.data() + (t + 1) * I);
      std::vector<float> gx = affine(wx, m.b, x);   // [4H], includes bias
      std::vector<float> gh = affine(wh, Tensor(), h);
      for (std::int64_t k = 0; k < H; ++k) {
        const std::size_t ki = static_cast<std::size_t>(k);
        const float zi = gx[ki] + gh[ki];
        const float zf = gx[ki + H] + gh[ki + H];
        const float zg = gx[ki + 2 * H] + gh[ki + 2 * H];
        const float zo = gx[ki + 3 * H] + gh[ki + 3 * H];
        const float i_g = sigmoid_value(zi);
        const float f_g = sigmoid_value(zf);
        const float g_g = tanh_value(zg);
        const float o_g = sigmoid_value(zo);
        c[ki] = f_g * c[ki] + i_g * g_g;
        h[ki] = o_g * tanh_value(c[ki]);
      }
    }
    preds.push_back(argmax(affine(w_out, m.b_out, h)));
  }
  return preds;
}

double eval_lstm_top1(const LstmEvalModel& m,
                      const WeightTransform& transform) {
  return top1_accuracy(m.eval_set.labels, lstm_predict(m, transform));
}

}  // namespace af
