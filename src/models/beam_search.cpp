#include "src/models/beam_search.hpp"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

struct Hypothesis {
  TokenSeq tokens;     // includes the leading BOS
  double logprob = 0.0;
};

double length_norm(std::size_t generated, float alpha) {
  return std::pow((5.0 + static_cast<double>(generated)) / 6.0,
                  static_cast<double>(alpha));
}

/// log softmax of one logits row, evaluated at every vocabulary entry.
std::vector<double> log_softmax_row(const float* row, std::int64_t v) {
  float mx = row[0];
  for (std::int64_t j = 1; j < v; ++j) mx = std::max(mx, row[j]);
  double denom = 0.0;
  for (std::int64_t j = 0; j < v; ++j) denom += std::exp(double(row[j]) - mx);
  const double log_denom = std::log(denom);
  std::vector<double> out(static_cast<std::size_t>(v));
  for (std::int64_t j = 0; j < v; ++j) {
    out[static_cast<std::size_t>(j)] = double(row[j]) - mx - log_denom;
  }
  return out;
}

/// Final selection: best completed hypothesis by normalized score, falling
/// back to the best live one. Strips the leading BOS.
TokenSeq best_of(const std::vector<std::pair<double, TokenSeq>>& completed,
                 const std::vector<Hypothesis>& live, float alpha) {
  const TokenSeq* best = nullptr;
  double best_score = -1e300;
  for (const auto& [score, tokens] : completed) {
    if (score > best_score) {
      best_score = score;
      best = &tokens;
    }
  }
  for (const auto& h : live) {
    const double score =
        h.logprob / length_norm(h.tokens.size() - 1, alpha);
    if (score > best_score) {
      best_score = score;
      best = &h.tokens;
    }
  }
  AF_CHECK(best != nullptr, "beam search produced no hypothesis");
  return TokenSeq(best->begin() + 1, best->end());
}

/// Shared beam expansion: scores [live][V] log-probabilities, grows each
/// hypothesis, splits finished ones off into `completed`.
std::vector<std::size_t> expand_beam(
    std::vector<Hypothesis>& live,
    const std::vector<std::vector<double>>& scores, std::int64_t eos,
    int beam_size, float alpha,
    std::vector<std::pair<double, TokenSeq>>& completed) {
  struct Candidate {
    double logprob;
    std::size_t parent;
    std::int64_t token;
  };
  std::vector<Candidate> candidates;
  for (std::size_t h = 0; h < live.size(); ++h) {
    for (std::size_t t = 0; t < scores[h].size(); ++t) {
      candidates.push_back({live[h].logprob + scores[h][t], h,
                            static_cast<std::int64_t>(t)});
    }
  }
  std::partial_sort(candidates.begin(),
                    candidates.begin() +
                        std::min<std::size_t>(candidates.size(),
                                              static_cast<std::size_t>(
                                                  2 * beam_size)),
                    candidates.end(),
                    [](const Candidate& a, const Candidate& b) {
                      return a.logprob > b.logprob;
                    });

  std::vector<Hypothesis> next;
  std::vector<std::size_t> parents;
  for (const Candidate& c : candidates) {
    if (static_cast<int>(next.size()) >= beam_size) break;
    Hypothesis h = live[c.parent];
    h.logprob = c.logprob;
    if (c.token == eos) {
      completed.emplace_back(
          c.logprob / length_norm(h.tokens.size() - 1 + 1, alpha), h.tokens);
      continue;
    }
    h.tokens.push_back(c.token);
    next.push_back(std::move(h));
    parents.push_back(c.parent);
  }
  live = std::move(next);
  return parents;
}

}  // namespace

TokenSeq transformer_beam_decode(TransformerMT& model, const TokenSeq& src,
                                 std::int64_t pad, std::int64_t bos,
                                 std::int64_t eos, const BeamConfig& cfg) {
  AF_CHECK(cfg.beam_size >= 1, "beam size must be positive");
  const std::int64_t vocab = model.config().tgt_vocab;
  std::vector<Hypothesis> live = {{{bos}, 0.0}};
  std::vector<std::pair<double, TokenSeq>> completed;

  // One incremental decoder with beam_size lanes for the whole search.
  // Fewer live hypotheses than lanes just leaves the trailing lanes
  // decoding garbage that no score ever reads — attention and every other
  // layer are lane-independent, so the live rows are bit-identical to a
  // live-only batch (the old full-recompute loop batched exactly those).
  TransformerDecoder::Options opts;
  opts.batch = cfg.beam_size;
  TransformerDecoder dec(model, opts);
  dec.begin(src, pad);

  std::vector<std::int64_t> last(static_cast<std::size_t>(cfg.beam_size),
                                 bos);
  for (std::int64_t step = 0; step < cfg.max_steps && !live.empty(); ++step) {
    // All live hypotheses share a length: lane h carries hypothesis h.
    for (std::size_t h = 0; h < live.size(); ++h) {
      last[h] = live[h].tokens.back();
    }
    const Tensor& logits = dec.step(last);  // [beam_size, V]

    std::vector<std::vector<double>> scores(live.size());
    for (std::size_t h = 0; h < live.size(); ++h) {
      scores[h] = log_softmax_row(
          logits.data() + static_cast<std::int64_t>(h) * vocab, vocab);
    }
    const std::vector<std::size_t> parents = expand_beam(
        live, scores, eos, cfg.beam_size, cfg.length_alpha, completed);
    if (live.empty() ||
        static_cast<std::int64_t>(live[0].tokens.size()) >=
            model.config().max_len) {
      break;
    }
    // Lane r continues parent[r]'s cached history.
    dec.reorder(parents);
  }
  return best_of(completed, live, cfg.length_alpha);
}

TokenSeq seq2seq_beam_decode(Seq2SeqAttn& model, const Tensor& frames,
                             std::int64_t bos, std::int64_t eos,
                             const BeamConfig& cfg) {
  AF_CHECK(cfg.beam_size >= 1, "beam size must be positive");
  AF_CHECK(frames.rank() == 3 && frames.dim(1) == 1,
           "beam decode expects one utterance [Ts, 1, F]");
  const std::int64_t vocab = model.config().vocab;

  std::vector<Hypothesis> live = {{{bos}, 0.0}};
  std::vector<std::pair<double, TokenSeq>> completed;
  for (std::int64_t step = 0; step < cfg.max_steps && !live.empty(); ++step) {
    // Re-run the decoder over each hypothesis prefix (O(T^2) but trivial at
    // toy scale and keeps the model's cache discipline simple).
    std::vector<std::vector<double>> scores(live.size());
    for (std::size_t h = 0; h < live.size(); ++h) {
      std::vector<TokenSeq> tgt_in = {live[h].tokens};
      Tensor logits = model.forward(frames, tgt_in);
      model.clear_caches();
      const std::int64_t t_len =
          static_cast<std::int64_t>(live[h].tokens.size());
      scores[h] = log_softmax_row(
          logits.data() + (t_len - 1) * vocab, vocab);
    }
    expand_beam(live, scores, eos, cfg.beam_size, cfg.length_alpha,
                completed);
  }
  return best_of(completed, live, cfg.length_alpha);
}

}  // namespace af
