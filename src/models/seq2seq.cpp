#include "src/models/seq2seq.hpp"

#include <algorithm>
#include <cmath>

#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {

// Forward-path input validation is reachable from a serving request, so a
// mismatch is a typed, catchable rejection — the ticket fails, the server
// does not (same contract as the Linear/attention forwards). Backward and
// training-only checks stay AF_CHECK.
void check_forward_inputs(const Tensor& frames,
                          const std::vector<TokenSeq>& tgt_in,
                          std::int64_t feature_dim) {
  if (frames.rank() != 3 || frames.dim(2) != feature_dim) {
    throw FaultError("seq2seq", FaultKind::kMalformedInput,
                     "frames must be [Ts, B, F=" +
                         std::to_string(feature_dim) + "], got " +
                         shape_str(frames.shape()));
  }
  const std::int64_t b = frames.dim(1);
  if (static_cast<std::int64_t>(tgt_in.size()) != b || tgt_in.empty()) {
    throw FaultError("seq2seq", FaultKind::kMalformedInput,
                     "target batch size mismatch (frames B=" +
                         std::to_string(b) + ", targets " +
                         std::to_string(tgt_in.size()) + ")");
  }
  const std::size_t tt = tgt_in[0].size();
  for (const auto& seq : tgt_in) {
    if (seq.size() != tt) {
      throw FaultError("seq2seq", FaultKind::kMalformedInput,
                       "ragged target batch");
    }
  }
}

}  // namespace

Seq2SeqAttn::Seq2SeqAttn(const Seq2SeqConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      encoder_([&] {
        Pcg32 r(seed, 11);
        return Lstm(cfg.feature_dim, cfg.hidden, cfg.enc_layers, r, "enc");
      }()),
      tgt_emb_([&] {
        Pcg32 r(seed, 12);
        // Unscaled embeddings, as in the Transformer: the output side of
        // sequence models is where the wider weights live (paper Table 1).
        return Embedding(cfg.vocab, cfg.hidden, r, "dec_emb", 0.5f);
      }()),
      decoder_([&] {
        Pcg32 r(seed, 13);
        return LstmCell(cfg.hidden, cfg.hidden, r, "dec");
      }()),
      attn_combine_([&] {
        Pcg32 r(seed, 14);
        return Linear(2 * cfg.hidden, cfg.hidden, r, true, "attn_combine");
      }()),
      out_proj_([&] {
        Pcg32 r(seed, 15);
        return Linear(cfg.hidden, cfg.vocab, r, true, "out_proj");
      }()) {}

Tensor Seq2SeqAttn::attend_core(const Tensor& h, const Tensor& enc,
                                Tensor& weights) {
  const std::int64_t b = h.dim(0), hidden = h.dim(1), ts = enc.dim(0);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hidden));
  Tensor scores({b, ts});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const float* hrow = h.data() + bi * hidden;
    for (std::int64_t s = 0; s < ts; ++s) {
      const float* erow = enc.data() + (s * b + bi) * hidden;
      double dot = 0;
      for (std::int64_t j = 0; j < hidden; ++j) dot += double(hrow[j]) * erow[j];
      scores[bi * ts + s] = static_cast<float>(dot) * inv_sqrt;
    }
  }
  weights = softmax_rows(scores);
  Tensor ctx({b, hidden});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    float* crow = ctx.data() + bi * hidden;
    for (std::int64_t s = 0; s < ts; ++s) {
      const float w = weights[bi * ts + s];
      const float* erow = enc.data() + (s * b + bi) * hidden;
      for (std::int64_t j = 0; j < hidden; ++j) crow[j] += w * erow[j];
    }
  }
  return ctx;
}

Tensor Seq2SeqAttn::attend(const Tensor& h, const Tensor& enc) {
  Tensor weights;
  Tensor ctx = attend_core(h, enc, weights);
  attn_cache_.push_back({std::move(weights)});
  return ctx;
}

Tensor Seq2SeqAttn::attend_backward(const Tensor& dctx, const Tensor& h,
                                    const Tensor& enc, Tensor& denc) {
  AF_CHECK(!attn_cache_.empty(), "attention backward without forward");
  Tensor weights = std::move(attn_cache_.back().weights);
  attn_cache_.pop_back();
  const std::int64_t b = h.dim(0), hidden = h.dim(1), ts = enc.dim(0);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hidden));

  // Through the weighted sum: dweights and the direct encoder path.
  Tensor dweights({b, ts});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const float* dcrow = dctx.data() + bi * hidden;
    for (std::int64_t s = 0; s < ts; ++s) {
      const float* erow = enc.data() + (s * b + bi) * hidden;
      float* derow = denc.data() + (s * b + bi) * hidden;
      const float w = weights[bi * ts + s];
      double dot = 0;
      for (std::int64_t j = 0; j < hidden; ++j) {
        dot += double(dcrow[j]) * erow[j];
        derow[j] += w * dcrow[j];
      }
      dweights[bi * ts + s] = static_cast<float>(dot);
    }
  }
  // Through the softmax and the scaled dot-product scores.
  Tensor dscores = softmax_rows_backward(weights, dweights);
  Tensor dh({b, hidden});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const float* hrow = h.data() + bi * hidden;
    float* dhrow = dh.data() + bi * hidden;
    for (std::int64_t s = 0; s < ts; ++s) {
      const float ds = dscores[bi * ts + s] * inv_sqrt;
      const float* erow = enc.data() + (s * b + bi) * hidden;
      float* derow = denc.data() + (s * b + bi) * hidden;
      for (std::int64_t j = 0; j < hidden; ++j) {
        dhrow[j] += ds * erow[j];
        derow[j] += ds * hrow[j];
      }
    }
  }
  return dh;
}

Tensor Seq2SeqAttn::forward(const Tensor& frames,
                            const std::vector<TokenSeq>& tgt_in) {
  check_forward_inputs(frames, tgt_in, cfg_.feature_dim);
  StepCtx ctx;
  ctx.ts = frames.dim(0);
  ctx.b = frames.dim(1);
  ctx.tt = static_cast<std::int64_t>(tgt_in[0].size());

  ctx.enc_out = act_quant_.process("enc.out", encoder_.forward(frames));

  Tensor logits({ctx.b * ctx.tt, cfg_.vocab});
  LstmState state = decoder_.initial_state(ctx.b);
  for (std::int64_t t = 0; t < ctx.tt; ++t) {
    std::vector<std::int64_t> ids(static_cast<std::size_t>(ctx.b));
    for (std::int64_t bi = 0; bi < ctx.b; ++bi) {
      const auto& seq = tgt_in[static_cast<std::size_t>(bi)];
      ids[static_cast<std::size_t>(bi)] = seq[static_cast<std::size_t>(t)];
    }
    Tensor x = tgt_emb_.forward(ids);
    state = decoder_.forward(x, state);
    ctx.dec_h.push_back(state.h);
    Tensor context = attend(state.h, ctx.enc_out);
    Tensor comb = act_quant_.process(
        "dec.comb",
        combine_act_.forward(
            attn_combine_.forward(concat_cols(state.h, context))));
    Tensor step_logits = out_proj_.forward(comb);
    for (std::int64_t bi = 0; bi < ctx.b; ++bi) {
      std::copy_n(step_logits.data() + bi * cfg_.vocab, cfg_.vocab,
                  logits.data() + (bi * ctx.tt + t) * cfg_.vocab);
    }
  }
  ctx_.push_back(std::move(ctx));
  return logits;
}

Tensor Seq2SeqAttn::forward(const Tensor& frames,
                            const std::vector<TokenSeq>& tgt_in,
                            ExecutionContext& ectx) {
  if (ectx.training) return forward(frames, tgt_in);
  check_forward_inputs(frames, tgt_in, cfg_.feature_dim);
  const std::int64_t b = frames.dim(1);
  const std::int64_t tt = static_cast<std::int64_t>(tgt_in[0].size());

  Tensor enc = act_quant_.process("enc.out", encoder_.forward(frames, ectx));

  Tensor logits({b * tt, cfg_.vocab});
  LstmState state = decoder_.initial_state(b);
  for (std::int64_t t = 0; t < tt; ++t) {
    std::vector<std::int64_t> ids(static_cast<std::size_t>(b));
    for (std::int64_t bi = 0; bi < b; ++bi) {
      const auto& seq = tgt_in[static_cast<std::size_t>(bi)];
      ids[static_cast<std::size_t>(bi)] = seq[static_cast<std::size_t>(t)];
    }
    Tensor x = tgt_emb_.forward(ids, ectx);
    state = decoder_.forward(x, state, ectx);
    Tensor weights;
    Tensor context = attend_core(state.h, enc, weights);
    Tensor comb = act_quant_.process(
        "dec.comb",
        combine_act_.forward(
            attn_combine_.forward(concat_cols(state.h, context), ectx),
            ectx));
    Tensor step_logits = out_proj_.forward(comb, ectx);
    for (std::int64_t bi = 0; bi < b; ++bi) {
      std::copy_n(step_logits.data() + bi * cfg_.vocab, cfg_.vocab,
                  logits.data() + (bi * tt + t) * cfg_.vocab);
    }
  }
  return logits;
}

void Seq2SeqAttn::backward(const Tensor& dlogits) {
  AF_CHECK(!ctx_.empty(), "Seq2SeqAttn backward without forward");
  StepCtx ctx = std::move(ctx_.back());
  ctx_.pop_back();
  AF_CHECK(dlogits.dim(0) == ctx.b * ctx.tt && dlogits.dim(1) == cfg_.vocab,
           "dlogits shape mismatch");

  Tensor denc({ctx.ts, ctx.b, cfg_.hidden});
  Tensor dstate_h({ctx.b, cfg_.hidden});
  Tensor dstate_c({ctx.b, cfg_.hidden});
  for (std::int64_t t = ctx.tt - 1; t >= 0; --t) {
    Tensor dstep({ctx.b, cfg_.vocab});
    for (std::int64_t bi = 0; bi < ctx.b; ++bi) {
      std::copy_n(dlogits.data() + (bi * ctx.tt + t) * cfg_.vocab, cfg_.vocab,
                  dstep.data() + bi * cfg_.vocab);
    }
    Tensor dcomb = attn_combine_.backward(
        combine_act_.backward(out_proj_.backward(dstep)));
    Tensor dh_direct, dctx_t;
    split_cols(dcomb, cfg_.hidden, dh_direct, dctx_t);
    const Tensor& h_t = ctx.dec_h[static_cast<std::size_t>(t)];
    Tensor dh_attn = attend_backward(dctx_t, h_t, ctx.enc_out, denc);
    add_inplace(dh_direct, dh_attn);
    add_inplace(dh_direct, dstate_h);
    auto [dx, dprev] = decoder_.backward(dh_direct, dstate_c);
    dstate_h = std::move(dprev.h);
    dstate_c = std::move(dprev.c);
    tgt_emb_.backward(dx);
  }
  // The decoder starts from a constant zero state, so the remaining
  // recurrent gradient terminates here; the encoder sees only the
  // attention-path gradient.
  encoder_.backward(denc);
}

TokenSeq Seq2SeqAttn::greedy_decode(const Tensor& frames, std::int64_t bos,
                                    std::int64_t eos) {
  AF_CHECK(frames.rank() == 3 && frames.dim(1) == 1,
           "greedy_decode expects a single utterance [Ts, 1, F]");
  Tensor enc = act_quant_.process("enc.out", encoder_.forward(frames));
  LstmState state = decoder_.initial_state(1);
  TokenSeq out;
  std::int64_t prev = bos;
  for (std::int64_t step = 0; step < cfg_.max_decode_len; ++step) {
    Tensor x = tgt_emb_.forward({prev});
    state = decoder_.forward(x, state);
    Tensor context = attend(state.h, enc);
    Tensor comb = act_quant_.process(
        "dec.comb",
        combine_act_.forward(
            attn_combine_.forward(concat_cols(state.h, context))));
    Tensor step_logits = out_proj_.forward(comb);
    const std::int64_t next = argmax_rows(step_logits)[0];
    if (next == eos) break;
    out.push_back(next);
    prev = next;
  }
  clear_caches();
  return out;
}

TokenSeq Seq2SeqAttn::greedy_decode(const Tensor& frames, std::int64_t bos,
                                    std::int64_t eos, ExecutionContext& ectx) {
  AF_CHECK(!ectx.training, "greedy_decode is inference-only");
  AF_CHECK(frames.rank() == 3 && frames.dim(1) == 1,
           "greedy_decode expects a single utterance [Ts, 1, F]");
  Tensor enc = act_quant_.process("enc.out", encoder_.forward(frames, ectx));
  LstmState state = decoder_.initial_state(1);
  TokenSeq out;
  std::int64_t prev = bos;
  for (std::int64_t step = 0; step < cfg_.max_decode_len; ++step) {
    Tensor x = tgt_emb_.forward({prev}, ectx);
    state = decoder_.forward(x, state, ectx);
    Tensor weights;
    Tensor context = attend_core(state.h, enc, weights);
    Tensor comb = act_quant_.process(
        "dec.comb",
        combine_act_.forward(
            attn_combine_.forward(concat_cols(state.h, context), ectx),
            ectx));
    Tensor step_logits = out_proj_.forward(comb, ectx);
    const std::int64_t next = argmax_rows(step_logits)[0];
    if (next == eos) break;
    out.push_back(next);
    prev = next;
  }
  return out;
}

std::int64_t Seq2SeqAttn::cache_depth() const {
  return encoder_.cache_depth() + tgt_emb_.cache_depth() +
         decoder_.cache_depth() + attn_combine_.cache_depth() +
         combine_act_.cache_depth() + out_proj_.cache_depth() +
         static_cast<std::int64_t>(attn_cache_.size()) +
         static_cast<std::int64_t>(ctx_.size());
}

std::vector<Parameter*> Seq2SeqAttn::parameters() {
  return collect_parameters({&encoder_, &tgt_emb_, &decoder_, &attn_combine_,
                             &combine_act_, &out_proj_});
}

void Seq2SeqAttn::zero_grad() {
  for (Module* m : std::vector<Module*>{&encoder_, &tgt_emb_, &decoder_,
                                        &attn_combine_, &combine_act_,
                                        &out_proj_}) {
    m->zero_grad();
  }
}

void Seq2SeqAttn::clear_caches() {
  for (Module* m : std::vector<Module*>{&encoder_, &tgt_emb_, &decoder_,
                                        &attn_combine_, &combine_act_,
                                        &out_proj_}) {
    m->clear_cache();
  }
  attn_cache_.clear();
  ctx_.clear();
}

}  // namespace af
