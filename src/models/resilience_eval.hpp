// Compact eval models for the bit-error resilience sweep.
//
// The Table 2/3 models retrain for minutes per baseline; a fault-injection
// sweep needs hundreds of corrupt-and-evaluate cells, so it runs on two
// purpose-built small models instead: an MLP classifier on the synthetic
// vision task and an LSTM sequence classifier on a synthetic frequency-
// discrimination task. Both expose their trained weights as plain tensors
// and evaluate through a caller-supplied per-layer weight transform — the
// sweep's encode → corrupt → (scrub) → decode pipeline slots in there
// without the model knowing anything about formats or faults.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace af {

/// Per-layer weight substitution: receives the trained weight matrix and
/// its layer index, returns the tensor to use instead (same shape). An
/// empty function means "use the trained weights unchanged".
using WeightTransform = std::function<Tensor(const Tensor& w, int layer)>;

/// Per-layer product substitution for the MLP: receives the activation
/// matrix x [n, in], the (already transformed) weight w [out, in] and the
/// layer index, and returns x * w^T [n, out]. The compute-fault sweep slots
/// an ABFT-protected (or deliberately fault-injected) GEMM in here. An
/// empty function selects the built-in per-vector double-accumulation path,
/// bit-identical to the historical evaluator.
using MatmulFn =
    std::function<Tensor(const Tensor& x, const Tensor& w, int layer)>;

/// Fixed held-out evaluation set (inputs are model-specific layouts).
struct EvalSet {
  std::vector<Tensor> inputs;
  std::vector<std::int64_t> labels;
};

// ----- MLP on the vision task ------------------------------------------------

/// Two-layer ReLU MLP over flattened vision-task images. Layer indices for
/// the transform: 0 = hidden weight [H, D], 1 = output weight [C, H].
/// Biases are not exposed to the transform (they are a vanishing fraction
/// of the stored bits; the sweep documents this).
struct MlpEvalModel {
  std::vector<Tensor> weights;  // [out, in] per layer
  std::vector<Tensor> biases;   // [out] per layer
  EvalSet eval_set;             // inputs: flattened images [D]
  double baseline_top1 = 0.0;   // fault-free accuracy on eval_set (%)
};

/// Trains the MLP to plateau on the vision task (deterministic in `seed`).
MlpEvalModel make_mlp_eval_model(std::uint64_t seed, int train_steps = 400,
                                 int eval_images = 240);

/// Argmax predictions on the eval set under the transform, multiplying via
/// `matmul_fn` when provided.
std::vector<std::int64_t> mlp_predict(const MlpEvalModel& m,
                                      const WeightTransform& transform = {},
                                      const MatmulFn& matmul_fn = {});

/// Top-1 accuracy (%) on the eval set under the transform.
double eval_mlp_top1(const MlpEvalModel& m,
                     const WeightTransform& transform = {},
                     const MatmulFn& matmul_fn = {});

// ----- LSTM on a synthetic sequence task -------------------------------------

/// Single-cell LSTM + linear readout classifying which class prototype
/// (a distinct frequency/phase mixture) generated a noisy sequence.
/// Layer indices for the transform: 0 = wx [4H, I], 1 = wh [4H, H],
/// 2 = readout weight [C, H].
struct LstmEvalModel {
  std::int64_t input = 0;
  std::int64_t hidden = 0;
  std::int64_t classes = 0;
  std::int64_t timesteps = 0;
  Tensor wx;     // [4H, I], gate order i, f, g, o
  Tensor wh;     // [4H, H]
  Tensor b;      // [4H]
  Tensor w_out;  // [C, H]
  Tensor b_out;  // [C]
  EvalSet eval_set;  // inputs: sequences [T, I]
  double baseline_top1 = 0.0;
};

/// Trains the LSTM classifier to plateau (deterministic in `seed`).
LstmEvalModel make_lstm_eval_model(std::uint64_t seed, int train_steps = 400,
                                   int eval_sequences = 240);

std::vector<std::int64_t> lstm_predict(const LstmEvalModel& m,
                                       const WeightTransform& transform = {});

double eval_lstm_top1(const LstmEvalModel& m,
                      const WeightTransform& transform = {});

}  // namespace af
