// Beam-search decoding for the sequence models.
//
// The paper's BLEU/WER numbers come from OpenNMT-style decoding, which uses
// a beam rather than greedy argmax. Greedy remains the default in the
// benches (it is what the quantization comparisons stress), but the beam
// decoder is provided for parity with the original evaluation protocol and
// typically adds a point or two of BLEU on imperfect models.
#pragma once

#include "src/models/seq2seq.hpp"
#include "src/models/transformer.hpp"

namespace af {

struct BeamConfig {
  int beam_size = 4;
  std::int64_t max_steps = 32;
  /// Google-NMT length normalization exponent: score / ((5+len)/6)^alpha.
  float length_alpha = 0.6f;
};

/// Beam decode of one source sentence. beam_size == 1 reduces to greedy.
TokenSeq transformer_beam_decode(TransformerMT& model, const TokenSeq& src,
                                 std::int64_t pad, std::int64_t bos,
                                 std::int64_t eos, const BeamConfig& cfg);

/// Beam decode of one utterance [Ts, 1, F].
TokenSeq seq2seq_beam_decode(Seq2SeqAttn& model, const Tensor& frames,
                             std::int64_t bos, std::int64_t eos,
                             const BeamConfig& cfg);

}  // namespace af
