#include "src/models/quantized_mlp.hpp"

#include "src/snapshot/writer.hpp"
#include "src/util/check.hpp"

namespace af {

QuantizedMlp::QuantizedMlp(Linear& fc1, Linear& fc2, int bits, int exp_bits)
    : q1_(fc1, bits, exp_bits), q2_(fc2, bits, exp_bits) {}

QuantizedMlp::QuantizedMlp(const MappedSnapshot& snap)
    : q1_(snap.packed_view("fc1.weight"), snap.fp32("fc1.bias")),
      q2_(snap.packed_view("fc2.weight"), snap.fp32("fc2.bias")),
      load_report_(snap.report()) {
  AF_CHECK(q1_.out_features() == q2_.in_features(),
           "snapshot layers do not chain: fc1 out != fc2 in");
}

void QuantizedMlp::save(const std::string& path) const {
  SnapshotWriter writer;
  writer.add_packed("fc1.weight", q1_.packed_weight());
  writer.add_fp32("fc1.bias", q1_.bias());
  writer.add_packed("fc2.weight", q2_.packed_weight());
  writer.add_fp32("fc2.bias", q2_.bias());
  writer.write(path);
}

Tensor QuantizedMlp::forward(const Tensor& x, ExecutionContext& ctx) {
  return q2_.forward(act_.forward(q1_.forward(x, ctx), ctx), ctx);
}

}  // namespace af
