// Compact ResNet (He et al., 2016) for the synthetic image task — the
// narrow-weight-distribution, batch-normalized CNN of the paper's
// evaluation. Architecturally a CIFAR-style ResNet: 3x3 stem, two stages of
// basic blocks with stride-2 downsampling between stages, global average
// pooling and a linear classifier.
#pragma once

#include <memory>
#include <vector>

#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/quant.hpp"

namespace af {

struct ResNetConfig {
  std::int64_t in_channels = 3;
  std::int64_t base_width = 8;
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;
  std::int64_t blocks_per_stage = 2;
  std::int64_t num_stages = 2;
};

class ResNetClassifier {
 public:
  ResNetClassifier(const ResNetConfig& cfg, std::uint64_t seed);

  /// x: [N, C, H, W] -> logits [N, num_classes].
  Tensor forward(const Tensor& x, bool training);

  /// Context forward: identical logits. Training delegates to the caching
  /// path above; inference pushes nothing (not even the pooling dims).
  Tensor forward(const Tensor& x, ExecutionContext& ectx);

  /// Adjoint of the training-mode forward.
  void backward(const Tensor& dlogits);

  /// Argmax class predictions (eval mode), clearing caches afterwards.
  std::vector<std::int64_t> predict(const Tensor& x);

  /// Cached forward records across the whole model (sessions assert 0).
  std::int64_t cache_depth() const;

  std::vector<Parameter*> parameters();
  void zero_grad();
  void clear_caches();

  ActQuant& act_quant() { return act_quant_; }
  const ResNetConfig& config() const { return cfg_; }

 private:
  struct BasicBlock {
    BasicBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t stride,
               Pcg32& rng, const std::string& name);
    Tensor forward(const Tensor& x, bool training);
    Tensor forward(const Tensor& x, ExecutionContext& ectx);
    Tensor backward(const Tensor& dy);
    std::vector<Module*> modules();

    bool has_projection;
    Conv2d conv1, conv2;
    std::unique_ptr<Conv2d> proj;  // 1x1 stride-s shortcut when shapes change
    BatchNorm2d bn1, bn2;
    ReLU relu1, relu2;
  };

  std::vector<Module*> all_modules();

  ResNetConfig cfg_;
  Conv2d stem_;
  BatchNorm2d stem_bn_;
  ReLU stem_relu_;
  std::vector<BasicBlock> blocks_;
  Linear fc_;
  ActQuant act_quant_;

  struct StepCtx {
    std::int64_t n = 0, c = 0, h = 0, w = 0;  // pooled feature map dims
  };
  std::vector<StepCtx> ctx_;
};

}  // namespace af
