// Training and evaluation harnesses for the three evaluation models.
//
// These implement the experimental protocol of the paper's Section 4:
//  * train an FP32 baseline to plateau;
//  * post-training quantization (PTQ): evaluate with weights replaced by
//    Q(W) per layer (all layers, including first/last);
//  * quantization-aware retraining (QAR): fine-tune from the FP32 baseline
//    with the straight-through estimator, then evaluate quantized;
//  * optional activation quantization with ranges calibrated offline.
#pragma once

#include <memory>

#include "src/data/speech_task.hpp"
#include "src/data/translation_task.hpp"
#include "src/data/vision_task.hpp"
#include "src/models/resnet.hpp"
#include "src/models/seq2seq.hpp"
#include "src/models/transformer.hpp"
#include "src/numerics/quantizer.hpp"

namespace af {

/// Copies every parameter value (for restoring a trained baseline between
/// QAR runs — each Table 2/3 cell retrains from the same FP32 plateau).
std::vector<Tensor> snapshot_parameters(const std::vector<Parameter*>& params);

/// Restores values captured by snapshot_parameters (shapes must match).
void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<Tensor>& snapshot);

/// Weight statistics across a parameter list (paper Figure 1 / Table 1).
struct WeightStats {
  float min = 0.0f;
  float max = 0.0f;
  std::int64_t count = 0;
};
WeightStats weight_stats(const std::vector<Parameter*>& params);

// ----- Transformer / machine translation ------------------------------------

struct TransformerBundle {
  TransformerConfig cfg;
  TranslationTask task;
  TransformerMT model;

  explicit TransformerBundle(std::uint64_t seed,
                             TransformerConfig config = {});
};

/// Teacher-forced Adam training; returns the final-epoch mean loss. When
/// `weight_q` is non-null every step runs with STE-quantized weights (QAR).
float train_transformer(TransformerBundle& b, int steps, int batch, float lr,
                        std::uint64_t seed, Quantizer* weight_q = nullptr);

/// Corpus BLEU of greedy decodes on a fixed held-out set. When `weight_q`
/// is non-null, evaluation runs under per-layer weight quantization.
double eval_transformer_bleu(TransformerBundle& b, int num_sentences,
                             Quantizer* weight_q = nullptr);

/// Runs `batches` calibration batches in ActQuantMode::kCalibrate (under
/// weight quantization when given) to record activation ranges.
void calibrate_transformer_activations(TransformerBundle& b, int batches,
                                       std::uint64_t seed,
                                       Quantizer* weight_q = nullptr);

/// Records per-decoder-layer K/V projection ranges over `batches`
/// teacher-forced forwards — the calibration statistic a quantized KV
/// cache (TransformerDecoder with KvCacheFormat.quantized) derives its
/// per-layer exp_bias from. Leaves the ActQuant mode untouched.
void calibrate_transformer_kv(TransformerBundle& b, int batches,
                              std::uint64_t seed,
                              Quantizer* weight_q = nullptr);

// ----- Seq2Seq / speech-to-text ----------------------------------------------

struct Seq2SeqBundle {
  Seq2SeqConfig cfg;
  SpeechTask task;
  Seq2SeqAttn model;

  explicit Seq2SeqBundle(std::uint64_t seed, Seq2SeqConfig config = {});
};

float train_seq2seq(Seq2SeqBundle& b, int steps, int batch, float lr,
                    std::uint64_t seed, Quantizer* weight_q = nullptr);

/// Word error rate (%) on a fixed held-out set of utterances.
double eval_seq2seq_wer(Seq2SeqBundle& b, int num_utterances,
                        Quantizer* weight_q = nullptr);

void calibrate_seq2seq_activations(Seq2SeqBundle& b, int batches,
                                   std::uint64_t seed,
                                   Quantizer* weight_q = nullptr);

// ----- ResNet / image classification -----------------------------------------

struct ResNetBundle {
  ResNetConfig cfg;
  VisionTask task;
  ResNetClassifier model;

  explicit ResNetBundle(std::uint64_t seed, ResNetConfig config = {});
};

float train_resnet(ResNetBundle& b, int steps, int batch, float lr,
                   std::uint64_t seed, Quantizer* weight_q = nullptr);

/// Top-1 accuracy (%) on a fixed held-out set.
double eval_resnet_top1(ResNetBundle& b, int num_images,
                        Quantizer* weight_q = nullptr);

void calibrate_resnet_activations(ResNetBundle& b, int batches,
                                  std::uint64_t seed,
                                  Quantizer* weight_q = nullptr);

}  // namespace af
