#include "src/models/resnet.hpp"

#include <algorithm>

#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {

ResNetClassifier::BasicBlock::BasicBlock(std::int64_t in_ch,
                                         std::int64_t out_ch,
                                         std::int64_t stride, Pcg32& rng,
                                         const std::string& name)
    : has_projection(stride != 1 || in_ch != out_ch),
      conv1(in_ch, out_ch, 3, stride, 1, rng, /*has_bias=*/false,
            name + ".conv1"),
      conv2(out_ch, out_ch, 3, 1, 1, rng, /*has_bias=*/false, name + ".conv2"),
      bn1(out_ch, name + ".bn1"),
      bn2(out_ch, name + ".bn2") {
  if (has_projection) {
    proj = std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0, rng,
                                    /*has_bias=*/false, name + ".proj");
  }
}

Tensor ResNetClassifier::BasicBlock::forward(const Tensor& x, bool training) {
  Tensor h = relu1.forward(bn1.forward(conv1.forward(x), training));
  h = bn2.forward(conv2.forward(h), training);
  Tensor shortcut = has_projection ? proj->forward(x) : x;
  return relu2.forward(add(h, shortcut));
}

Tensor ResNetClassifier::BasicBlock::forward(const Tensor& x,
                                             ExecutionContext& ectx) {
  Tensor h = relu1.forward(bn1.forward(conv1.forward(x, ectx), ectx), ectx);
  h = bn2.forward(conv2.forward(h, ectx), ectx);
  Tensor shortcut = has_projection ? proj->forward(x, ectx) : x;
  return relu2.forward(add(h, shortcut), ectx);
}

Tensor ResNetClassifier::BasicBlock::backward(const Tensor& dy) {
  Tensor dsum = relu2.backward(dy);
  // Main path.
  Tensor dx = conv1.backward(
      bn1.backward(relu1.backward(conv2.backward(bn2.backward(dsum)))));
  // Shortcut path.
  if (has_projection) {
    add_inplace(dx, proj->backward(dsum));
  } else {
    add_inplace(dx, dsum);
  }
  return dx;
}

std::vector<Module*> ResNetClassifier::BasicBlock::modules() {
  std::vector<Module*> mods = {&conv1, &conv2, &bn1, &bn2, &relu1, &relu2};
  if (proj) mods.push_back(proj.get());
  return mods;
}

ResNetClassifier::ResNetClassifier(const ResNetConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      stem_([&] {
        Pcg32 r(seed, 21);
        return Conv2d(cfg.in_channels, cfg.base_width, 3, 1, 1, r,
                      /*has_bias=*/false, "stem");
      }()),
      stem_bn_(cfg.base_width, "stem_bn"),
      fc_([&] {
        Pcg32 r(seed, 22);
        const std::int64_t top_width = cfg.base_width
                                       << (cfg.num_stages - 1);
        return Linear(top_width, cfg.num_classes, r, true, "fc");
      }()) {
  Pcg32 rng(seed, 23);
  std::int64_t in_ch = cfg.base_width;
  for (std::int64_t stage = 0; stage < cfg.num_stages; ++stage) {
    const std::int64_t out_ch = cfg.base_width << stage;
    for (std::int64_t b = 0; b < cfg.blocks_per_stage; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      // Built with += rather than operator+ chains: GCC 12's -Wrestrict
      // pass reports a false positive on `const char* + std::string&&`.
      std::string name = "s";
      name += std::to_string(stage);
      name += "b";
      name += std::to_string(b);
      blocks_.emplace_back(in_ch, out_ch, stride, rng, name);
      in_ch = out_ch;
    }
  }
}

Tensor ResNetClassifier::forward(const Tensor& x, bool training) {
  AF_CHECK(x.rank() == 4 && x.dim(1) == cfg_.in_channels,
           "ResNet expects [N, C, H, W]");
  Tensor h = stem_relu_.forward(stem_bn_.forward(stem_.forward(x), training));
  h = act_quant_.process("stem", h);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    h = act_quant_.process("block" + std::to_string(i),
                           blocks_[i].forward(h, training));
  }
  // Global average pooling.
  const std::int64_t n = h.dim(0), c = h.dim(1), hh = h.dim(2), ww = h.dim(3);
  Tensor pooled({n, c});
  const float inv = 1.0f / static_cast<float>(hh * ww);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = h.data() + (i * c + ch) * hh * ww;
      double acc = 0;
      for (std::int64_t j = 0; j < hh * ww; ++j) acc += plane[j];
      pooled[i * c + ch] = static_cast<float>(acc) * inv;
    }
  }
  ctx_.push_back({n, c, hh, ww});
  return fc_.forward(act_quant_.process("pooled", pooled));
}

Tensor ResNetClassifier::forward(const Tensor& x, ExecutionContext& ectx) {
  if (ectx.training) return forward(x, /*training=*/true);
  AF_CHECK(x.rank() == 4 && x.dim(1) == cfg_.in_channels,
           "ResNet expects [N, C, H, W]");
  Tensor h = stem_relu_.forward(
      stem_bn_.forward(stem_.forward(x, ectx), ectx), ectx);
  h = act_quant_.process("stem", h);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    h = act_quant_.process("block" + std::to_string(i),
                           blocks_[i].forward(h, ectx));
  }
  // Global average pooling (same reduction order as the caching path).
  const std::int64_t n = h.dim(0), c = h.dim(1), hh = h.dim(2), ww = h.dim(3);
  Tensor pooled({n, c});
  const float inv = 1.0f / static_cast<float>(hh * ww);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = h.data() + (i * c + ch) * hh * ww;
      double acc = 0;
      for (std::int64_t j = 0; j < hh * ww; ++j) acc += plane[j];
      pooled[i * c + ch] = static_cast<float>(acc) * inv;
    }
  }
  return fc_.forward(act_quant_.process("pooled", pooled), ectx);
}

void ResNetClassifier::backward(const Tensor& dlogits) {
  AF_CHECK(!ctx_.empty(), "ResNet backward without forward");
  const StepCtx ctx = ctx_.back();
  ctx_.pop_back();
  Tensor dpooled = fc_.backward(dlogits);
  // Un-pool: spread the averaged gradient uniformly over the plane.
  Tensor dh({ctx.n, ctx.c, ctx.h, ctx.w});
  const float inv = 1.0f / static_cast<float>(ctx.h * ctx.w);
  for (std::int64_t i = 0; i < ctx.n; ++i) {
    for (std::int64_t ch = 0; ch < ctx.c; ++ch) {
      const float g = dpooled[i * ctx.c + ch] * inv;
      float* plane = dh.data() + (i * ctx.c + ch) * ctx.h * ctx.w;
      for (std::int64_t j = 0; j < ctx.h * ctx.w; ++j) plane[j] = g;
    }
  }
  for (std::size_t i = blocks_.size(); i-- > 0;) {
    dh = blocks_[i].backward(dh);
  }
  stem_.backward(stem_bn_.backward(stem_relu_.backward(dh)));
}

std::vector<std::int64_t> ResNetClassifier::predict(const Tensor& x) {
  Tensor logits = forward(x, /*training=*/false);
  clear_caches();
  return argmax_rows(logits);
}

std::vector<Module*> ResNetClassifier::all_modules() {
  std::vector<Module*> mods = {&stem_, &stem_bn_, &stem_relu_, &fc_};
  for (auto& blk : blocks_) {
    for (Module* m : blk.modules()) mods.push_back(m);
  }
  return mods;
}

std::int64_t ResNetClassifier::cache_depth() const {
  std::int64_t n = stem_.cache_depth() + stem_bn_.cache_depth() +
                   stem_relu_.cache_depth() + fc_.cache_depth() +
                   static_cast<std::int64_t>(ctx_.size());
  for (const auto& blk : blocks_) {
    n += blk.conv1.cache_depth() + blk.conv2.cache_depth() +
         blk.bn1.cache_depth() + blk.bn2.cache_depth() +
         blk.relu1.cache_depth() + blk.relu2.cache_depth();
    if (blk.proj) n += blk.proj->cache_depth();
  }
  return n;
}

std::vector<Parameter*> ResNetClassifier::parameters() {
  return collect_parameters(all_modules());
}

void ResNetClassifier::zero_grad() {
  for (Module* m : all_modules()) m->zero_grad();
}

void ResNetClassifier::clear_caches() {
  for (Module* m : all_modules()) m->clear_cache();
  ctx_.clear();
}

}  // namespace af
