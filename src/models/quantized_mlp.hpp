// Deployment-form MLP: the snapshot round-trip model.
//
// One model, two boot paths that must agree bit-for-bit:
//   * quantize  — from trained FP32 Linears through Algorithm 1 (the build
//     machine's path), then save() persists the packed codes, per-tensor
//     formats and sidecars into a snapshot container.
//   * from_snapshot — mmap the container and serve the very same packed
//     bytes zero-copy (the serving fleet's path). No decode, no
//     re-quantization: the weight views point into the page cache.
// The runtime tests pin the two paths to identical inference bits, and the
// cold-start benchmark measures what skipping the rebuild is worth.
#pragma once

#include <string>

#include "src/nn/activations.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/quantized_linear.hpp"
#include "src/snapshot/snapshot.hpp"

namespace af {

class QuantizedMlp {
 public:
  /// Quantizes a trained two-layer MLP (fc1 -> ReLU -> fc2) with the given
  /// AdaptivFloat format.
  QuantizedMlp(Linear& fc1, Linear& fc2, int bits, int exp_bits);

  /// Boots from an opened snapshot: zero-copy weight views over the
  /// mapping, biases copied out (tiny). The snapshot's load report is
  /// retained so callers can see whether this model is serving repaired or
  /// degraded weights. Sections: fc{1,2}.weight (packed), fc{1,2}.bias.
  explicit QuantizedMlp(const MappedSnapshot& snap);

  /// Persists the packed weights + biases through the crash-safe writer.
  void save(const std::string& path) const;

  /// Batched forward: `x` is [m, in_features] for any m >= 1. Every layer
  /// on the path (packed GEMM, bias add, ReLU) treats rows independently,
  /// so row i of a batched forward is bit-identical to the same row run
  /// solo — the contract the serving batcher scatters responses under.
  Tensor forward(const Tensor& x, ExecutionContext& ctx);

  std::int64_t in_features() const { return q1_.in_features(); }
  std::int64_t out_features() const { return q2_.out_features(); }

  std::int64_t cache_depth() const { return act_.cache_depth(); }
  const QuantizedLinear& fc1() const { return q1_; }
  const QuantizedLinear& fc2() const { return q2_; }

  /// Load-time recovery record (empty for the quantize-path constructor).
  const SnapshotLoadReport& load_report() const { return load_report_; }

 private:
  QuantizedLinear q1_;
  ReLU act_;
  QuantizedLinear q2_;
  SnapshotLoadReport load_report_;
};

}  // namespace af
