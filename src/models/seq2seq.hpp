// Attention-based LSTM sequence-to-sequence model (Chorowski et al., 2015
// flavour) — the speech-to-text model of the paper's evaluation.
//
// Multi-layer LSTM encoder over continuous feature frames; single-layer
// LSTM decoder with Luong-style dot-product attention over the encoder
// outputs; teacher forcing for training, greedy decoding for WER.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "src/data/metrics.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/embedding.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/quant.hpp"

namespace af {

struct Seq2SeqConfig {
  std::int64_t feature_dim = 16;
  std::int64_t hidden = 64;
  std::int64_t enc_layers = 2;
  std::int64_t vocab = 16;
  std::int64_t max_decode_len = 24;
};

class Seq2SeqAttn {
 public:
  Seq2SeqAttn(const Seq2SeqConfig& cfg, std::uint64_t seed);

  /// Teacher-forced forward: frames [Ts, B, F], tgt_in [B][Tt] token ids.
  /// Returns logits [B * Tt, vocab] (time-major within each batch row:
  /// row = b * Tt + t).
  Tensor forward(const Tensor& frames, const std::vector<TokenSeq>& tgt_in);

  /// Context forward: identical logits. Training delegates to the caching
  /// path above; inference pushes no caches anywhere in the model.
  Tensor forward(const Tensor& frames, const std::vector<TokenSeq>& tgt_in,
                 ExecutionContext& ectx);

  /// Adjoint of forward (full BPTT through decoder, attention and encoder).
  void backward(const Tensor& dlogits);

  /// Greedy decode of a single utterance [Ts, 1, F].
  TokenSeq greedy_decode(const Tensor& frames, std::int64_t bos,
                         std::int64_t eos);

  /// Context greedy decode: same tokens, no cache pushes (and therefore no
  /// trailing clear_caches()).
  TokenSeq greedy_decode(const Tensor& frames, std::int64_t bos,
                         std::int64_t eos, ExecutionContext& ectx);

  /// Cached forward records across the whole model (sessions assert 0).
  std::int64_t cache_depth() const;

  std::vector<Parameter*> parameters();
  void zero_grad();
  void clear_caches();

  ActQuant& act_quant() { return act_quant_; }
  const Seq2SeqConfig& config() const { return cfg_; }

 private:
  // Dot-product attention for one decoder step.
  struct AttnCache {
    Tensor weights;  // [B, Ts]
  };
  // context [B, H] from decoder hidden h [B, H] and encoder outputs
  // [Ts, B, H]; pushes the softmax weights for backward.
  Tensor attend(const Tensor& h, const Tensor& enc);
  // Scores -> softmax -> weighted sum, shared by the caching and context
  // paths; writes the softmax weights to `weights`.
  Tensor attend_core(const Tensor& h, const Tensor& enc, Tensor& weights);
  // returns (dh, and accumulates into denc).
  Tensor attend_backward(const Tensor& dctx, const Tensor& h,
                         const Tensor& enc, Tensor& denc);

  struct StepCtx {
    Tensor enc_out;            // [Ts, B, H]
    std::vector<Tensor> dec_h;  // decoder hidden per step [B, H]
    std::int64_t b = 0, ts = 0, tt = 0;
  };

  Seq2SeqConfig cfg_;
  Lstm encoder_;
  Embedding tgt_emb_;
  LstmCell decoder_;
  Linear attn_combine_;  // [2H -> H] with tanh
  Tanh combine_act_;
  Linear out_proj_;      // [H -> vocab]
  ActQuant act_quant_;

  std::vector<AttnCache> attn_cache_;
  std::vector<StepCtx> ctx_;
};

}  // namespace af
