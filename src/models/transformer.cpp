#include "src/models/transformer.hpp"

#include <algorithm>
#include <cmath>

#include "src/resilience/codec.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {

std::vector<std::int64_t> valid_lengths(const std::vector<TokenSeq>& batch,
                                        std::int64_t pad_id) {
  std::vector<std::int64_t> lengths;
  lengths.reserve(batch.size());
  for (const auto& seq : batch) {
    std::int64_t len = static_cast<std::int64_t>(seq.size());
    while (len > 0 && seq[static_cast<std::size_t>(len - 1)] == pad_id) --len;
    lengths.push_back(len);
  }
  return lengths;
}

}  // namespace

TransformerMT::EncoderBlock::EncoderBlock(const TransformerConfig& cfg,
                                          Pcg32& rng, int index)
    : ln1(cfg.d_model, "enc" + std::to_string(index) + ".ln1"),
      ln2(cfg.d_model, "enc" + std::to_string(index) + ".ln2"),
      attn(cfg.d_model, cfg.num_heads, rng,
           "enc" + std::to_string(index) + ".attn"),
      fc1(cfg.d_model, cfg.d_ffn, rng, true,
          "enc" + std::to_string(index) + ".fc1"),
      fc2(cfg.d_ffn, cfg.d_model, rng, true,
          "enc" + std::to_string(index) + ".fc2") {}

Tensor TransformerMT::EncoderBlock::forward(
    const Tensor& x, const std::vector<std::int64_t>& lengths) {
  const std::int64_t b = x.dim(0), t = x.dim(1), d = x.dim(2);
  // Post-LN (original Vaswani / OpenNMT) ordering: sublayer, residual add,
  // then normalize. Unlike pre-LN this keeps scale pressure on the
  // embeddings and residual stream — the source of the wide NLP weight
  // distributions in paper Figure 1.
  Tensor sa = attn.forward(x, x, /*causal=*/false, &lengths);
  Tensor x1 =
      ln1.forward(add(x, sa).reshaped({b * t, d})).reshaped({b, t, d});
  Tensor h = fc2.forward(gelu.forward(fc1.forward(x1.reshaped({b * t, d}))));
  return ln2.forward(add(x1, h.reshaped({b, t, d})).reshaped({b * t, d}))
      .reshaped({b, t, d});
}

Tensor TransformerMT::EncoderBlock::forward(
    const Tensor& x, const std::vector<std::int64_t>& lengths,
    ExecutionContext& ctx) {
  const std::int64_t b = x.dim(0), t = x.dim(1), d = x.dim(2);
  // Same Post-LN math as the caching forward, through the ctx-dispatched
  // layer entry points (bit-preserving per the runtime contract).
  Tensor sa = attn.forward(x, x, /*causal=*/false, &lengths, ctx);
  Tensor x1 = ln1.forward(add(x, sa).reshaped({b * t, d}), ctx)
                  .reshaped({b, t, d});
  Tensor h = fc2.forward(
      gelu.forward(fc1.forward(x1.reshaped({b * t, d}), ctx), ctx), ctx);
  return ln2.forward(add(x1, h.reshaped({b, t, d})).reshaped({b * t, d}), ctx)
      .reshaped({b, t, d});
}

Tensor TransformerMT::EncoderBlock::backward(const Tensor& dy) {
  const std::int64_t b = dy.dim(0), t = dy.dim(1), d = dy.dim(2);
  Tensor d2 = ln2.backward(dy.reshaped({b * t, d}));
  Tensor dh = fc1.backward(gelu.backward(fc2.backward(d2)));
  Tensor dx1 = add(d2, dh).reshaped({b, t, d});
  Tensor d1 = ln1.backward(dx1.reshaped({b * t, d}));
  auto [dq, dkv] = attn.backward(d1.reshaped({b, t, d}));
  return add(add(d1.reshaped({b, t, d}), dq), dkv);
}

std::vector<Module*> TransformerMT::EncoderBlock::modules() {
  return {&ln1, &ln2, &attn, &fc1, &fc2, &gelu};
}

TransformerMT::DecoderBlock::DecoderBlock(const TransformerConfig& cfg,
                                          Pcg32& rng, int index)
    : ln1(cfg.d_model, "dec" + std::to_string(index) + ".ln1"),
      ln2(cfg.d_model, "dec" + std::to_string(index) + ".ln2"),
      ln3(cfg.d_model, "dec" + std::to_string(index) + ".ln3"),
      self_attn(cfg.d_model, cfg.num_heads, rng,
                "dec" + std::to_string(index) + ".self"),
      cross_attn(cfg.d_model, cfg.num_heads, rng,
                 "dec" + std::to_string(index) + ".cross"),
      fc1(cfg.d_model, cfg.d_ffn, rng, true,
          "dec" + std::to_string(index) + ".fc1"),
      fc2(cfg.d_ffn, cfg.d_model, rng, true,
          "dec" + std::to_string(index) + ".fc2") {}

Tensor TransformerMT::DecoderBlock::forward(
    const Tensor& x, const Tensor& enc,
    const std::vector<std::int64_t>& src_lengths) {
  const std::int64_t b = x.dim(0), t = x.dim(1), d = x.dim(2);
  // Post-LN ordering throughout (see EncoderBlock::forward).
  Tensor sa = self_attn.forward(x, x, /*causal=*/true);
  Tensor x1 =
      ln1.forward(add(x, sa).reshaped({b * t, d})).reshaped({b, t, d});
  Tensor ca = cross_attn.forward(x1, enc, false, &src_lengths);
  Tensor x2 =
      ln2.forward(add(x1, ca).reshaped({b * t, d})).reshaped({b, t, d});
  Tensor h = fc2.forward(gelu.forward(fc1.forward(x2.reshaped({b * t, d}))));
  return ln3.forward(add(x2, h.reshaped({b, t, d})).reshaped({b * t, d}))
      .reshaped({b, t, d});
}

std::pair<Tensor, Tensor> TransformerMT::DecoderBlock::backward(
    const Tensor& dy) {
  const std::int64_t b = dy.dim(0), t = dy.dim(1), d = dy.dim(2);
  Tensor d3 = ln3.backward(dy.reshaped({b * t, d}));
  Tensor dh = fc1.backward(gelu.backward(fc2.backward(d3)));
  Tensor dx2 = add(d3, dh);
  Tensor d2 = ln2.backward(dx2);
  auto [dc, denc] = cross_attn.backward(d2.reshaped({b, t, d}));
  Tensor dx1 = add(d2.reshaped({b, t, d}), dc);
  Tensor d1 = ln1.backward(dx1.reshaped({b * t, d}));
  auto [dq, dkv] = self_attn.backward(d1.reshaped({b, t, d}));
  return {add(add(d1.reshaped({b, t, d}), dq), dkv), std::move(denc)};
}

std::vector<Module*> TransformerMT::DecoderBlock::modules() {
  return {&ln1, &ln2, &ln3, &self_attn, &cross_attn, &fc1, &fc2, &gelu};
}

TransformerMT::TransformerMT(const TransformerConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      src_emb_([&] {
        Pcg32 r(seed, 1);
        // Unscaled-embedding parameterization (no sqrt(D) multiplier):
        // the table itself carries representation scale, and under Zipfian
        // data the frequent-token rows keep growing — the source of the
        // wide NLP weight ranges in paper Figure 1.
        return Embedding(cfg.src_vocab, cfg.d_model, r, "src_emb", 1.0f);
      }()),
      tgt_emb_([&] {
        Pcg32 r(seed, 2);
        return Embedding(cfg.tgt_vocab, cfg.d_model, r, "tgt_emb", 1.0f);
      }()),
      enc_final_(cfg.d_model, "enc_final"),
      dec_final_(cfg.d_model, "dec_final"),
      out_proj_([&] {
        Pcg32 r(seed, 3);
        return Linear(cfg.d_model, cfg.tgt_vocab, r, true, "out_proj");
      }()),
      pos_table_({cfg.max_len, cfg.d_model}) {
  Pcg32 rng(seed, 4);
  enc_blocks_.reserve(static_cast<std::size_t>(cfg.enc_layers));
  for (int i = 0; i < cfg.enc_layers; ++i) enc_blocks_.emplace_back(cfg, rng, i);
  dec_blocks_.reserve(static_cast<std::size_t>(cfg.dec_layers));
  for (int i = 0; i < cfg.dec_layers; ++i) dec_blocks_.emplace_back(cfg, rng, i);

  // Sinusoidal positional encodings (Vaswani et al., Eq. 5).
  for (std::int64_t t = 0; t < cfg.max_len; ++t) {
    for (std::int64_t i = 0; i < cfg.d_model; i += 2) {
      const double rate =
          std::pow(10000.0, -static_cast<double>(i) / cfg.d_model);
      pos_table_.at({t, i}) = static_cast<float>(std::sin(t * rate));
      if (i + 1 < cfg.d_model) {
        pos_table_.at({t, i + 1}) = static_cast<float>(std::cos(t * rate));
      }
    }
  }
}

Tensor TransformerMT::embed(Embedding& emb, const std::vector<TokenSeq>& batch) {
  const auto b = static_cast<std::int64_t>(batch.size());
  AF_CHECK(b > 0, "empty batch");
  const auto t = static_cast<std::int64_t>(batch[0].size());
  AF_CHECK(t <= cfg_.max_len, "sequence longer than max_len");
  std::vector<std::int64_t> flat;
  flat.reserve(static_cast<std::size_t>(b * t));
  for (const auto& seq : batch) {
    AF_CHECK(static_cast<std::int64_t>(seq.size()) == t,
             "ragged batch: all sequences must share a length");
    flat.insert(flat.end(), seq.begin(), seq.end());
  }
  Tensor e = emb.forward(flat);
  for (std::int64_t r = 0; r < b * t; ++r) {
    const std::int64_t pos = r % t;
    float* row = e.data() + r * cfg_.d_model;
    const float* prow = pos_table_.data() + pos * cfg_.d_model;
    for (std::int64_t j = 0; j < cfg_.d_model; ++j) {
      row[j] += prow[j];
    }
  }
  return e;
}

Tensor TransformerMT::embed(Embedding& emb, const std::vector<TokenSeq>& batch,
                            ExecutionContext& ctx) {
  const auto b = static_cast<std::int64_t>(batch.size());
  AF_CHECK(b > 0, "empty batch");
  const auto t = static_cast<std::int64_t>(batch[0].size());
  AF_CHECK(t <= cfg_.max_len, "sequence longer than max_len");
  std::vector<std::int64_t> flat;
  flat.reserve(static_cast<std::size_t>(b * t));
  for (const auto& seq : batch) {
    AF_CHECK(static_cast<std::int64_t>(seq.size()) == t,
             "ragged batch: all sequences must share a length");
    flat.insert(flat.end(), seq.begin(), seq.end());
  }
  Tensor e = emb.forward(flat, ctx);
  for (std::int64_t r = 0; r < b * t; ++r) {
    const std::int64_t pos = r % t;
    float* row = e.data() + r * cfg_.d_model;
    const float* prow = pos_table_.data() + pos * cfg_.d_model;
    for (std::int64_t j = 0; j < cfg_.d_model; ++j) {
      row[j] += prow[j];
    }
  }
  return e;
}

Tensor TransformerMT::encode(const std::vector<TokenSeq>& src,
                             const std::vector<std::int64_t>& lengths,
                             ExecutionContext& ctx) {
  const auto b = static_cast<std::int64_t>(src.size());
  const auto ts = static_cast<std::int64_t>(src[0].size());
  const std::int64_t d = cfg_.d_model;
  Tensor x = act_quant_.process("enc.embed", embed(src_emb_, src, ctx))
                 .reshaped({b, ts, d});
  for (std::size_t i = 0; i < enc_blocks_.size(); ++i) {
    x = act_quant_.process("enc.block" + std::to_string(i),
                           enc_blocks_[i].forward(x, lengths, ctx));
  }
  return act_quant_.process(
             "enc.out", enc_final_.forward(x.reshaped({b * ts, d}), ctx))
      .reshaped({b, ts, d});
}

void TransformerMT::set_kv_range_recording(bool on) {
  for (auto& blk : dec_blocks_) {
    blk.self_attn.set_kv_range_recording(on);
    blk.cross_attn.set_kv_range_recording(on);
  }
}

TransformerMT::KvRanges TransformerMT::dec_kv_ranges(std::int64_t layer) const {
  AF_CHECK(layer >= 0 &&
               layer < static_cast<std::int64_t>(dec_blocks_.size()),
           "decoder layer index out of range");
  const auto& blk = dec_blocks_[static_cast<std::size_t>(layer)];
  return {blk.self_attn.k_range_seen(), blk.self_attn.v_range_seen(),
          blk.cross_attn.k_range_seen(), blk.cross_attn.v_range_seen()};
}

Tensor TransformerMT::forward(const std::vector<TokenSeq>& src,
                              const std::vector<TokenSeq>& tgt_in,
                              std::int64_t pad_id) {
  AF_CHECK(src.size() == tgt_in.size(), "batch size mismatch");
  StepCtx ctx;
  ctx.b = static_cast<std::int64_t>(src.size());
  ctx.ts = static_cast<std::int64_t>(src[0].size());
  ctx.tt = static_cast<std::int64_t>(tgt_in[0].size());
  ctx.src_lengths = valid_lengths(src, pad_id);
  const std::int64_t d = cfg_.d_model;

  // Encoder.
  Tensor x = act_quant_.process("enc.embed", embed(src_emb_, src))
                 .reshaped({ctx.b, ctx.ts, d});
  for (std::size_t i = 0; i < enc_blocks_.size(); ++i) {
    x = act_quant_.process("enc.block" + std::to_string(i),
                           enc_blocks_[i].forward(x, ctx.src_lengths));
  }
  Tensor enc = act_quant_.process(
      "enc.out", enc_final_.forward(x.reshaped({ctx.b * ctx.ts, d})))
                   .reshaped({ctx.b, ctx.ts, d});

  // Decoder.
  Tensor y = act_quant_.process("dec.embed", embed(tgt_emb_, tgt_in))
                 .reshaped({ctx.b, ctx.tt, d});
  for (std::size_t i = 0; i < dec_blocks_.size(); ++i) {
    y = act_quant_.process("dec.block" + std::to_string(i),
                           dec_blocks_[i].forward(y, enc, ctx.src_lengths));
  }
  Tensor out = dec_final_.forward(y.reshaped({ctx.b * ctx.tt, d}));
  out = act_quant_.process("dec.out", out);
  ctx_.push_back(std::move(ctx));
  return out_proj_.forward(out);
}

void TransformerMT::backward(const Tensor& dlogits) {
  AF_CHECK(!ctx_.empty(), "TransformerMT backward without forward");
  StepCtx ctx = std::move(ctx_.back());
  ctx_.pop_back();
  const std::int64_t d = cfg_.d_model;

  Tensor dy = dec_final_.backward(out_proj_.backward(dlogits))
                  .reshaped({ctx.b, ctx.tt, d});
  Tensor denc({ctx.b, ctx.ts, d});
  for (std::size_t i = dec_blocks_.size(); i-- > 0;) {
    auto [dx, de] = dec_blocks_[i].backward(dy);
    dy = std::move(dx);
    add_inplace(denc, de);
  }
  // The positional term is constant; the table gradient is dy itself.
  tgt_emb_.backward(dy.reshaped({ctx.b * ctx.tt, d}));

  Tensor dx = enc_final_.backward(denc.reshaped({ctx.b * ctx.ts, d}))
                  .reshaped({ctx.b, ctx.ts, d});
  for (std::size_t i = enc_blocks_.size(); i-- > 0;) {
    dx = enc_blocks_[i].backward(dx);
  }
  src_emb_.backward(dx.reshaped({ctx.b * ctx.ts, d}));
}

TokenSeq TransformerMT::greedy_decode(const TokenSeq& src, std::int64_t pad_id,
                                      std::int64_t bos, std::int64_t eos,
                                      std::int64_t max_steps) {
  // Incremental decode over an fp32 KV cache: bit-identical logits to the
  // old full-recompute loop (forward over the growing prefix each step) —
  // the incremental-equality tests and bench_decode --verify pin this.
  TransformerDecoder dec(*this);
  dec.begin(src, pad_id);
  TokenSeq out;
  std::vector<std::int64_t> last = {bos};
  std::int64_t tgt_len = 1;  // decoded prefix incl. BOS
  for (std::int64_t step = 0; step < max_steps; ++step) {
    const Tensor& logits = dec.step(last);
    const std::int64_t next = argmax_rows(logits)[0];
    if (next == eos) break;
    out.push_back(next);
    last[0] = next;
    if (++tgt_len >= cfg_.max_len) break;
  }
  return out;
}

std::vector<Module*> TransformerMT::all_modules() {
  std::vector<Module*> mods = {&src_emb_, &tgt_emb_, &enc_final_, &dec_final_,
                               &out_proj_};
  for (auto& blk : enc_blocks_) {
    for (Module* m : blk.modules()) mods.push_back(m);
  }
  for (auto& blk : dec_blocks_) {
    for (Module* m : blk.modules()) mods.push_back(m);
  }
  return mods;
}

std::vector<Parameter*> TransformerMT::parameters() {
  return collect_parameters(all_modules());
}

void TransformerMT::zero_grad() {
  for (Module* m : all_modules()) m->zero_grad();
}

void TransformerMT::clear_caches() {
  for (Module* m : all_modules()) m->clear_cache();
  ctx_.clear();
}

// ----- TransformerDecoder ----------------------------------------------------

namespace {

std::shared_ptr<const FormatCodec> kv_codec(const KvCacheFormat& fmt,
                                            float range, const char* what) {
  if (range <= 0.0f) {
    throw FaultError("decode", FaultKind::kMalformedInput,
                     std::string("quantized KV cache requires a calibrated ") +
                         what + " range (run calibrate_transformer_kv)");
  }
  return std::shared_ptr<const FormatCodec>(
      make_codec(fmt.kind, fmt.bits, range));
}

}  // namespace

TransformerDecoder::TransformerDecoder(TransformerMT& model)
    : TransformerDecoder(model, Options()) {}

TransformerDecoder::TransformerDecoder(TransformerMT& model, Options opts)
    : model_(model), opts_(std::move(opts)) {
  const TransformerConfig& cfg = model_.cfg_;
  if (opts_.batch <= 0) {
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decoder needs a positive lane count");
  }
  if (opts_.max_steps == 0) opts_.max_steps = cfg.max_len;
  if (opts_.max_steps > cfg.max_len) {
    // The positional table (and the monolithic path it must match) only
    // covers max_len positions — a longer plan could never be decoded.
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decode plan of " + std::to_string(opts_.max_steps) +
                         " steps exceeds max_len " +
                         std::to_string(cfg.max_len));
  }
  const auto layers = static_cast<std::size_t>(cfg.dec_layers);
  self_quant_.resize(layers);
  cross_quant_.resize(layers);
  if (opts_.kv.quantized) {
    for (std::size_t i = 0; i < layers; ++i) {
      // Per-layer exp_bias recalibration: each codec is bracketed by the
      // max-abs its layer's K or V projections reached during calibration
      // (the paper's AdaptivFloat rule, applied to cache storage).
      const TransformerMT::KvRanges r =
          model_.dec_kv_ranges(static_cast<std::int64_t>(i));
      self_quant_[i] = {kv_codec(opts_.kv, r.self_k, "self-attention K"),
                        kv_codec(opts_.kv, r.self_v, "self-attention V")};
      cross_quant_[i] = {kv_codec(opts_.kv, r.cross_k, "cross-attention K"),
                         kv_codec(opts_.kv, r.cross_v, "cross-attention V")};
    }
  }
  self_kv_.resize(layers);
  cross_kv_.resize(layers);

  DecodeHooks hooks;
  hooks.setup = [this](ExecutionContext& c) { setup(c); };
  hooks.prefill = [this](ExecutionContext& c) { prefill(c); };
  hooks.step = [this](const std::vector<std::int64_t>& t,
                      ExecutionContext& c) { return decode_step(t, c); };
  hooks.cache_probe = [this] {
    std::int64_t depth = 0;
    for (Module* m : model_.all_modules()) depth += m->cache_depth();
    return depth;
  };
  DecodeSessionConfig scfg;
  scfg.ctx = opts_.ctx;
  scfg.max_steps = opts_.max_steps;
  session_ = std::make_unique<DecodeSession>(std::move(hooks),
                                             std::move(scfg));
}

void TransformerDecoder::setup(ExecutionContext&) {
  // Runs under the session's KV arena: every byte of cache storage (and the
  // quantized decode scratch) is planned here, once, to full capacity.
  const TransformerConfig& cfg = model_.cfg_;
  for (std::size_t i = 0; i < self_kv_.size(); ++i) {
    self_kv_[i].init(opts_.batch, opts_.max_steps, cfg.d_model,
                     self_quant_[i]);
    cross_kv_[i].init(opts_.batch, cfg.max_len, cfg.d_model, cross_quant_[i]);
  }
}

void TransformerDecoder::begin(const TokenSeq& src, std::int64_t pad_id) {
  if (src.empty() ||
      static_cast<std::int64_t>(src.size()) > model_.cfg_.max_len) {
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decode source must be 1.." +
                         std::to_string(model_.cfg_.max_len) + " tokens, got " +
                         std::to_string(src.size()));
  }
  src_batch_.assign(static_cast<std::size_t>(opts_.batch), src);
  src_lengths_ = valid_lengths(src_batch_, pad_id);
  session_->begin();
}

void TransformerDecoder::prefill(ExecutionContext& ctx) {
  Tensor enc = model_.encode(src_batch_, src_lengths_, ctx);
  for (std::size_t i = 0; i < self_kv_.size(); ++i) {
    self_kv_[i].reset();
    cross_kv_[i].reset();
    // The encoder side never changes during decoding: project K/V once.
    model_.dec_blocks_[i].cross_attn.prefill_cross(enc, cross_kv_[i], ctx);
  }
  pos_ = 0;
}

const Tensor& TransformerDecoder::step(
    const std::vector<std::int64_t>& last_tokens) {
  if (static_cast<std::int64_t>(last_tokens.size()) != opts_.batch) {
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decode step needs one token per lane");
  }
  return session_->step(last_tokens);
}

Tensor TransformerDecoder::embed_step(const std::vector<std::int64_t>& ids,
                                      ExecutionContext& ctx) {
  const std::int64_t d = model_.cfg_.d_model;
  Tensor e = model_.tgt_emb_.forward(ids, ctx);  // [B, D]
  const float* prow = model_.pos_table_.data() + pos_ * d;
  for (std::int64_t bi = 0; bi < opts_.batch; ++bi) {
    float* row = e.data() + bi * d;
    for (std::int64_t j = 0; j < d; ++j) row[j] += prow[j];
  }
  return e;
}

Tensor TransformerDecoder::decode_step(const std::vector<std::int64_t>& ids,
                                       ExecutionContext& ctx) {
  // One decoder timestep, rank-2 [B, D] throughout: every tensor here is a
  // row slice of what the teacher-forced [B*T, D] path computes, and every
  // layer is row-independent — the source of the fp32-KV bit-equality.
  ActQuant& aq = model_.act_quant_;
  Tensor y = aq.process("dec.embed", embed_step(ids, ctx));
  for (std::size_t i = 0; i < self_kv_.size(); ++i) {
    auto& blk = model_.dec_blocks_[i];
    Tensor sa = blk.self_attn.decode_self_step(y, self_kv_[i], ctx);
    Tensor x1 = blk.ln1.forward(add(y, sa), ctx);
    Tensor ca = blk.cross_attn.decode_cross_step(x1, cross_kv_[i],
                                                 &src_lengths_, ctx);
    Tensor x2 = blk.ln2.forward(add(x1, ca), ctx);
    Tensor h = blk.fc2.forward(
        blk.gelu.forward(blk.fc1.forward(x2, ctx), ctx), ctx);
    y = aq.process("dec.block" + std::to_string(i),
                   blk.ln3.forward(add(x2, h), ctx));
  }
  Tensor out = aq.process("dec.out", model_.dec_final_.forward(y, ctx));
  ++pos_;
  return model_.out_proj_.forward(out, ctx);
}

void TransformerDecoder::reorder(const std::vector<std::size_t>& parents) {
  // Cross caches hold the same (replicated) source in every lane, so only
  // the self-attention history distinguishes hypotheses.
  for (auto& kv : self_kv_) kv.reorder(parents);
}

std::size_t TransformerDecoder::kv_bytes() const {
  std::size_t total = 0;
  for (const auto& kv : self_kv_) total += kv.payload_bytes();
  for (const auto& kv : cross_kv_) total += kv.payload_bytes();
  return total;
}

std::size_t TransformerDecoder::kv_bytes_per_step() const {
  std::size_t total = 0;
  for (const auto& kv : self_kv_) total += kv.bytes_per_step();
  return total;
}

// ----- TransformerStreamDecoder ----------------------------------------------

TransformerStreamDecoder::TransformerStreamDecoder(
    TransformerMT& model, TransformerDecoder::Options opts,
    std::int64_t pad_id, std::int64_t bos, std::int64_t eos)
    : dec_(model,
           [&] {
             opts.batch = 1;  // a stream is one greedy lane
             return std::move(opts);
           }()),
      pad_id_(pad_id),
      bos_(bos),
      eos_(eos) {}

void TransformerStreamDecoder::open(const std::vector<std::int64_t>& src) {
  dec_.begin(src, pad_id_);
}

std::int64_t TransformerStreamDecoder::step(std::int64_t last_token) {
  const Tensor& logits = dec_.step({last_token});
  return argmax_rows(logits)[0];
}

}  // namespace af
