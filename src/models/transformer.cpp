#include "src/models/transformer.hpp"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

std::vector<std::int64_t> valid_lengths(const std::vector<TokenSeq>& batch,
                                        std::int64_t pad_id) {
  std::vector<std::int64_t> lengths;
  lengths.reserve(batch.size());
  for (const auto& seq : batch) {
    std::int64_t len = static_cast<std::int64_t>(seq.size());
    while (len > 0 && seq[static_cast<std::size_t>(len - 1)] == pad_id) --len;
    lengths.push_back(len);
  }
  return lengths;
}

}  // namespace

TransformerMT::EncoderBlock::EncoderBlock(const TransformerConfig& cfg,
                                          Pcg32& rng, int index)
    : ln1(cfg.d_model, "enc" + std::to_string(index) + ".ln1"),
      ln2(cfg.d_model, "enc" + std::to_string(index) + ".ln2"),
      attn(cfg.d_model, cfg.num_heads, rng,
           "enc" + std::to_string(index) + ".attn"),
      fc1(cfg.d_model, cfg.d_ffn, rng, true,
          "enc" + std::to_string(index) + ".fc1"),
      fc2(cfg.d_ffn, cfg.d_model, rng, true,
          "enc" + std::to_string(index) + ".fc2") {}

Tensor TransformerMT::EncoderBlock::forward(
    const Tensor& x, const std::vector<std::int64_t>& lengths) {
  const std::int64_t b = x.dim(0), t = x.dim(1), d = x.dim(2);
  // Post-LN (original Vaswani / OpenNMT) ordering: sublayer, residual add,
  // then normalize. Unlike pre-LN this keeps scale pressure on the
  // embeddings and residual stream — the source of the wide NLP weight
  // distributions in paper Figure 1.
  Tensor sa = attn.forward(x, x, /*causal=*/false, &lengths);
  Tensor x1 =
      ln1.forward(add(x, sa).reshaped({b * t, d})).reshaped({b, t, d});
  Tensor h = fc2.forward(gelu.forward(fc1.forward(x1.reshaped({b * t, d}))));
  return ln2.forward(add(x1, h.reshaped({b, t, d})).reshaped({b * t, d}))
      .reshaped({b, t, d});
}

Tensor TransformerMT::EncoderBlock::backward(const Tensor& dy) {
  const std::int64_t b = dy.dim(0), t = dy.dim(1), d = dy.dim(2);
  Tensor d2 = ln2.backward(dy.reshaped({b * t, d}));
  Tensor dh = fc1.backward(gelu.backward(fc2.backward(d2)));
  Tensor dx1 = add(d2, dh).reshaped({b, t, d});
  Tensor d1 = ln1.backward(dx1.reshaped({b * t, d}));
  auto [dq, dkv] = attn.backward(d1.reshaped({b, t, d}));
  return add(add(d1.reshaped({b, t, d}), dq), dkv);
}

std::vector<Module*> TransformerMT::EncoderBlock::modules() {
  return {&ln1, &ln2, &attn, &fc1, &fc2, &gelu};
}

TransformerMT::DecoderBlock::DecoderBlock(const TransformerConfig& cfg,
                                          Pcg32& rng, int index)
    : ln1(cfg.d_model, "dec" + std::to_string(index) + ".ln1"),
      ln2(cfg.d_model, "dec" + std::to_string(index) + ".ln2"),
      ln3(cfg.d_model, "dec" + std::to_string(index) + ".ln3"),
      self_attn(cfg.d_model, cfg.num_heads, rng,
                "dec" + std::to_string(index) + ".self"),
      cross_attn(cfg.d_model, cfg.num_heads, rng,
                 "dec" + std::to_string(index) + ".cross"),
      fc1(cfg.d_model, cfg.d_ffn, rng, true,
          "dec" + std::to_string(index) + ".fc1"),
      fc2(cfg.d_ffn, cfg.d_model, rng, true,
          "dec" + std::to_string(index) + ".fc2") {}

Tensor TransformerMT::DecoderBlock::forward(
    const Tensor& x, const Tensor& enc,
    const std::vector<std::int64_t>& src_lengths) {
  const std::int64_t b = x.dim(0), t = x.dim(1), d = x.dim(2);
  // Post-LN ordering throughout (see EncoderBlock::forward).
  Tensor sa = self_attn.forward(x, x, /*causal=*/true);
  Tensor x1 =
      ln1.forward(add(x, sa).reshaped({b * t, d})).reshaped({b, t, d});
  Tensor ca = cross_attn.forward(x1, enc, false, &src_lengths);
  Tensor x2 =
      ln2.forward(add(x1, ca).reshaped({b * t, d})).reshaped({b, t, d});
  Tensor h = fc2.forward(gelu.forward(fc1.forward(x2.reshaped({b * t, d}))));
  return ln3.forward(add(x2, h.reshaped({b, t, d})).reshaped({b * t, d}))
      .reshaped({b, t, d});
}

std::pair<Tensor, Tensor> TransformerMT::DecoderBlock::backward(
    const Tensor& dy) {
  const std::int64_t b = dy.dim(0), t = dy.dim(1), d = dy.dim(2);
  Tensor d3 = ln3.backward(dy.reshaped({b * t, d}));
  Tensor dh = fc1.backward(gelu.backward(fc2.backward(d3)));
  Tensor dx2 = add(d3, dh);
  Tensor d2 = ln2.backward(dx2);
  auto [dc, denc] = cross_attn.backward(d2.reshaped({b, t, d}));
  Tensor dx1 = add(d2.reshaped({b, t, d}), dc);
  Tensor d1 = ln1.backward(dx1.reshaped({b * t, d}));
  auto [dq, dkv] = self_attn.backward(d1.reshaped({b, t, d}));
  return {add(add(d1.reshaped({b, t, d}), dq), dkv), std::move(denc)};
}

std::vector<Module*> TransformerMT::DecoderBlock::modules() {
  return {&ln1, &ln2, &ln3, &self_attn, &cross_attn, &fc1, &fc2, &gelu};
}

TransformerMT::TransformerMT(const TransformerConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      src_emb_([&] {
        Pcg32 r(seed, 1);
        // Unscaled-embedding parameterization (no sqrt(D) multiplier):
        // the table itself carries representation scale, and under Zipfian
        // data the frequent-token rows keep growing — the source of the
        // wide NLP weight ranges in paper Figure 1.
        return Embedding(cfg.src_vocab, cfg.d_model, r, "src_emb", 1.0f);
      }()),
      tgt_emb_([&] {
        Pcg32 r(seed, 2);
        return Embedding(cfg.tgt_vocab, cfg.d_model, r, "tgt_emb", 1.0f);
      }()),
      enc_final_(cfg.d_model, "enc_final"),
      dec_final_(cfg.d_model, "dec_final"),
      out_proj_([&] {
        Pcg32 r(seed, 3);
        return Linear(cfg.d_model, cfg.tgt_vocab, r, true, "out_proj");
      }()),
      pos_table_({cfg.max_len, cfg.d_model}) {
  Pcg32 rng(seed, 4);
  enc_blocks_.reserve(static_cast<std::size_t>(cfg.enc_layers));
  for (int i = 0; i < cfg.enc_layers; ++i) enc_blocks_.emplace_back(cfg, rng, i);
  dec_blocks_.reserve(static_cast<std::size_t>(cfg.dec_layers));
  for (int i = 0; i < cfg.dec_layers; ++i) dec_blocks_.emplace_back(cfg, rng, i);

  // Sinusoidal positional encodings (Vaswani et al., Eq. 5).
  for (std::int64_t t = 0; t < cfg.max_len; ++t) {
    for (std::int64_t i = 0; i < cfg.d_model; i += 2) {
      const double rate =
          std::pow(10000.0, -static_cast<double>(i) / cfg.d_model);
      pos_table_.at({t, i}) = static_cast<float>(std::sin(t * rate));
      if (i + 1 < cfg.d_model) {
        pos_table_.at({t, i + 1}) = static_cast<float>(std::cos(t * rate));
      }
    }
  }
}

Tensor TransformerMT::embed(Embedding& emb, const std::vector<TokenSeq>& batch) {
  const auto b = static_cast<std::int64_t>(batch.size());
  AF_CHECK(b > 0, "empty batch");
  const auto t = static_cast<std::int64_t>(batch[0].size());
  AF_CHECK(t <= cfg_.max_len, "sequence longer than max_len");
  std::vector<std::int64_t> flat;
  flat.reserve(static_cast<std::size_t>(b * t));
  for (const auto& seq : batch) {
    AF_CHECK(static_cast<std::int64_t>(seq.size()) == t,
             "ragged batch: all sequences must share a length");
    flat.insert(flat.end(), seq.begin(), seq.end());
  }
  Tensor e = emb.forward(flat);
  for (std::int64_t r = 0; r < b * t; ++r) {
    const std::int64_t pos = r % t;
    float* row = e.data() + r * cfg_.d_model;
    const float* prow = pos_table_.data() + pos * cfg_.d_model;
    for (std::int64_t j = 0; j < cfg_.d_model; ++j) {
      row[j] += prow[j];
    }
  }
  return e;
}

Tensor TransformerMT::forward(const std::vector<TokenSeq>& src,
                              const std::vector<TokenSeq>& tgt_in,
                              std::int64_t pad_id) {
  AF_CHECK(src.size() == tgt_in.size(), "batch size mismatch");
  StepCtx ctx;
  ctx.b = static_cast<std::int64_t>(src.size());
  ctx.ts = static_cast<std::int64_t>(src[0].size());
  ctx.tt = static_cast<std::int64_t>(tgt_in[0].size());
  ctx.src_lengths = valid_lengths(src, pad_id);
  const std::int64_t d = cfg_.d_model;

  // Encoder.
  Tensor x = act_quant_.process("enc.embed", embed(src_emb_, src))
                 .reshaped({ctx.b, ctx.ts, d});
  for (std::size_t i = 0; i < enc_blocks_.size(); ++i) {
    x = act_quant_.process("enc.block" + std::to_string(i),
                           enc_blocks_[i].forward(x, ctx.src_lengths));
  }
  Tensor enc = act_quant_.process(
      "enc.out", enc_final_.forward(x.reshaped({ctx.b * ctx.ts, d})))
                   .reshaped({ctx.b, ctx.ts, d});

  // Decoder.
  Tensor y = act_quant_.process("dec.embed", embed(tgt_emb_, tgt_in))
                 .reshaped({ctx.b, ctx.tt, d});
  for (std::size_t i = 0; i < dec_blocks_.size(); ++i) {
    y = act_quant_.process("dec.block" + std::to_string(i),
                           dec_blocks_[i].forward(y, enc, ctx.src_lengths));
  }
  Tensor out = dec_final_.forward(y.reshaped({ctx.b * ctx.tt, d}));
  out = act_quant_.process("dec.out", out);
  ctx_.push_back(std::move(ctx));
  return out_proj_.forward(out);
}

void TransformerMT::backward(const Tensor& dlogits) {
  AF_CHECK(!ctx_.empty(), "TransformerMT backward without forward");
  StepCtx ctx = std::move(ctx_.back());
  ctx_.pop_back();
  const std::int64_t d = cfg_.d_model;

  Tensor dy = dec_final_.backward(out_proj_.backward(dlogits))
                  .reshaped({ctx.b, ctx.tt, d});
  Tensor denc({ctx.b, ctx.ts, d});
  for (std::size_t i = dec_blocks_.size(); i-- > 0;) {
    auto [dx, de] = dec_blocks_[i].backward(dy);
    dy = std::move(dx);
    add_inplace(denc, de);
  }
  // The positional term is constant; the table gradient is dy itself.
  tgt_emb_.backward(dy.reshaped({ctx.b * ctx.tt, d}));

  Tensor dx = enc_final_.backward(denc.reshaped({ctx.b * ctx.ts, d}))
                  .reshaped({ctx.b, ctx.ts, d});
  for (std::size_t i = enc_blocks_.size(); i-- > 0;) {
    dx = enc_blocks_[i].backward(dx);
  }
  src_emb_.backward(dx.reshaped({ctx.b * ctx.ts, d}));
}

TokenSeq TransformerMT::greedy_decode(const TokenSeq& src, std::int64_t pad_id,
                                      std::int64_t bos, std::int64_t eos,
                                      std::int64_t max_steps) {
  TokenSeq tgt = {bos};
  TokenSeq out;
  for (std::int64_t step = 0; step < max_steps; ++step) {
    Tensor logits = forward({src}, {tgt}, pad_id);
    clear_caches();
    const std::int64_t t_last = static_cast<std::int64_t>(tgt.size()) - 1;
    Tensor last({1, cfg_.tgt_vocab});
    std::copy_n(logits.data() + t_last * cfg_.tgt_vocab, cfg_.tgt_vocab,
                last.data());
    const std::int64_t next = argmax_rows(last)[0];
    if (next == eos) break;
    out.push_back(next);
    tgt.push_back(next);
    if (static_cast<std::int64_t>(tgt.size()) >= cfg_.max_len) break;
  }
  return out;
}

std::vector<Module*> TransformerMT::all_modules() {
  std::vector<Module*> mods = {&src_emb_, &tgt_emb_, &enc_final_, &dec_final_,
                               &out_proj_};
  for (auto& blk : enc_blocks_) {
    for (Module* m : blk.modules()) mods.push_back(m);
  }
  for (auto& blk : dec_blocks_) {
    for (Module* m : blk.modules()) mods.push_back(m);
  }
  return mods;
}

std::vector<Parameter*> TransformerMT::parameters() {
  return collect_parameters(all_modules());
}

void TransformerMT::zero_grad() {
  for (Module* m : all_modules()) m->zero_grad();
}

void TransformerMT::clear_caches() {
  for (Module* m : all_modules()) m->clear_cache();
  ctx_.clear();
}

}  // namespace af
