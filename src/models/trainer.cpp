#include "src/models/trainer.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "src/nn/loss.hpp"
#include "src/nn/optimizer.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/tensor/arena.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

// Fixed seeds so every evaluation call sees the same held-out data.
constexpr std::uint64_t kEvalSeed = 0xE7A1;

/// Runs fn with weights optionally replaced by their quantization.
template <typename Fn>
auto with_optional_weight_quant(std::vector<Parameter*> params, Quantizer* q,
                                Fn&& fn) {
  if (q == nullptr) return fn();
  WeightQuantScope scope(std::move(params), *q);
  return fn();
}

}  // namespace

std::vector<Tensor> snapshot_parameters(
    const std::vector<Parameter*>& params) {
  std::vector<Tensor> snap;
  snap.reserve(params.size());
  for (const Parameter* p : params) snap.push_back(p->value);
  return snap;
}

void restore_parameters(const std::vector<Parameter*>& params,
                        const std::vector<Tensor>& snapshot) {
  AF_CHECK(params.size() == snapshot.size(), "snapshot size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    AF_CHECK(params[i]->value.shape() == snapshot[i].shape(),
             "snapshot shape mismatch for " + params[i]->name);
    params[i]->value = snapshot[i];
  }
}

WeightStats weight_stats(const std::vector<Parameter*>& params) {
  WeightStats s;
  for (const Parameter* p : params) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float v = p->value[i];
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    s.count += p->value.numel();
  }
  return s;
}

// ----- Transformer -----------------------------------------------------------

TransformerBundle::TransformerBundle(std::uint64_t seed,
                                     TransformerConfig config)
    : cfg(config),
      task(config.src_vocab, /*min_len=*/5, /*max_len=*/9, seed),
      model(config, seed) {}

float train_transformer(TransformerBundle& b, int steps, int batch, float lr,
                        std::uint64_t seed, Quantizer* weight_q) {
  Pcg32 rng(seed, 0x7111);
  Adam opt(b.model.parameters(), lr);
  double recent = 0.0;
  int recent_n = 0;
  // Post-LN Transformers need a short learning-rate warmup for stability.
  const int warmup = std::min(100, steps / 4 + 1);
  for (int step = 0; step < steps; ++step) {
    opt.set_lr(lr * std::min(1.0f, static_cast<float>(step + 1) /
                                       static_cast<float>(warmup)));
    auto pairs = b.task.sample_batch(batch, rng);
    std::vector<TokenSeq> src, tgt_in;
    std::vector<std::int64_t> tgt_out;
    for (const auto& p : pairs) {
      src.push_back(p.source);
      TokenSeq in = {TranslationTask::kBos};
      in.insert(in.end(), p.target.begin(), p.target.end());
      tgt_in.push_back(std::move(in));
      tgt_out.insert(tgt_out.end(), p.target.begin(), p.target.end());
      tgt_out.push_back(TranslationTask::kEos);
    }
    b.model.zero_grad();
    float loss;
    {
      std::optional<WeightQuantScope> scope;
      if (weight_q) scope.emplace(b.model.parameters(), *weight_q);
      Tensor logits = b.model.forward(src, tgt_in, TranslationTask::kPad);
      auto res = softmax_cross_entropy(logits, tgt_out, TranslationTask::kPad);
      loss = res.loss;
      b.model.backward(res.dlogits);
    }
    clip_grad_norm(b.model.parameters(), 1.0f);
    opt.step();
    if (step >= steps - 20) {
      recent += loss;
      ++recent_n;
    }
  }
  return recent_n ? static_cast<float>(recent / recent_n) : 0.0f;
}

double eval_transformer_bleu(TransformerBundle& b, int num_sentences,
                             Quantizer* weight_q) {
  Pcg32 rng(kEvalSeed, 0x7112);
  std::vector<TokenSeq> refs, hyps;
  return with_optional_weight_quant(b.model.parameters(), weight_q, [&] {
    for (int i = 0; i < num_sentences; ++i) {
      auto pair = b.task.sample(rng);
      refs.push_back(pair.target);
      hyps.push_back(b.model.greedy_decode(
          pair.source, TranslationTask::kPad, TranslationTask::kBos,
          TranslationTask::kEos,
          static_cast<std::int64_t>(pair.source.size()) + 4));
    }
    return bleu_score(refs, hyps);
  });
}

void calibrate_transformer_activations(TransformerBundle& b, int batches,
                                       std::uint64_t seed,
                                       Quantizer* weight_q) {
  Pcg32 rng(seed, 0x7113);
  const ActQuantMode prev = b.model.act_quant().mode();
  b.model.act_quant().reset_stats();
  b.model.act_quant().set_mode(ActQuantMode::kCalibrate);
  with_optional_weight_quant(b.model.parameters(), weight_q, [&] {
    for (int i = 0; i < batches; ++i) {
      auto pairs = b.task.sample_batch(8, rng);
      std::vector<TokenSeq> src, tgt_in;
      for (const auto& p : pairs) {
        src.push_back(p.source);
        TokenSeq in = {TranslationTask::kBos};
        in.insert(in.end(), p.target.begin(), p.target.end());
        tgt_in.push_back(std::move(in));
      }
      b.model.forward(src, tgt_in, TranslationTask::kPad);
      b.model.clear_caches();
    }
  });
  b.model.act_quant().set_mode(prev);
}

void calibrate_transformer_kv(TransformerBundle& b, int batches,
                              std::uint64_t seed, Quantizer* weight_q) {
  // Same protocol as activation calibration — offline teacher-forced
  // batches — but the recorded statistic is the per-decoder-layer max-abs
  // of the projected K/V activations, captured inside the attention
  // modules themselves.
  Pcg32 rng(seed, 0x7114);
  b.model.set_kv_range_recording(true);
  with_optional_weight_quant(b.model.parameters(), weight_q, [&] {
    for (int i = 0; i < batches; ++i) {
      auto pairs = b.task.sample_batch(8, rng);
      std::vector<TokenSeq> src, tgt_in;
      for (const auto& p : pairs) {
        src.push_back(p.source);
        TokenSeq in = {TranslationTask::kBos};
        in.insert(in.end(), p.target.begin(), p.target.end());
        tgt_in.push_back(std::move(in));
      }
      b.model.forward(src, tgt_in, TranslationTask::kPad);
      b.model.clear_caches();
    }
  });
  b.model.set_kv_range_recording(false);
}

// ----- Seq2Seq ---------------------------------------------------------------

Seq2SeqBundle::Seq2SeqBundle(std::uint64_t seed, Seq2SeqConfig config)
    : cfg(config),
      task(config.vocab, config.feature_dim, /*min_len=*/4, /*max_len=*/8,
           /*frames_per_token=*/2, /*noise=*/0.15f, seed),
      model(config, seed) {}

float train_seq2seq(Seq2SeqBundle& b, int steps, int batch, float lr,
                    std::uint64_t seed, Quantizer* weight_q) {
  Pcg32 rng(seed, 0x7211);
  Adam opt(b.model.parameters(), lr);
  double recent = 0.0;
  int recent_n = 0;
  for (int step = 0; step < steps; ++step) {
    auto data = b.task.sample_batch(batch, rng);
    std::vector<TokenSeq> tgt_in;
    std::vector<std::int64_t> tgt_out;
    for (const auto& transcript : data.transcripts) {
      TokenSeq in = {SpeechTask::kBos};
      in.insert(in.end(), transcript.begin(), transcript.end());
      tgt_in.push_back(std::move(in));
      tgt_out.insert(tgt_out.end(), transcript.begin(), transcript.end());
      tgt_out.push_back(SpeechTask::kEos);
    }
    b.model.zero_grad();
    float loss;
    {
      std::optional<WeightQuantScope> scope;
      if (weight_q) scope.emplace(b.model.parameters(), *weight_q);
      Tensor logits = b.model.forward(data.frames, tgt_in);
      auto res = softmax_cross_entropy(logits, tgt_out, SpeechTask::kPad);
      loss = res.loss;
      b.model.backward(res.dlogits);
    }
    clip_grad_norm(b.model.parameters(), 1.0f);
    opt.step();
    if (step >= steps - 20) {
      recent += loss;
      ++recent_n;
    }
  }
  return recent_n ? static_cast<float>(recent / recent_n) : 0.0f;
}

double eval_seq2seq_wer(Seq2SeqBundle& b, int num_utterances,
                        Quantizer* weight_q) {
  Pcg32 rng(kEvalSeed, 0x7212);
  std::vector<TokenSeq> refs, hyps;
  return with_optional_weight_quant(b.model.parameters(), weight_q, [&] {
    // Context-driven decode: no cache pushes (so no clear_caches), and the
    // per-utterance working tensors recycle through one arena.
    ExecutionContext ectx;
    Arena arena;
    for (int i = 0; i < num_utterances; ++i) {
      Utterance utt = b.task.sample(rng);
      refs.push_back(utt.transcript);
      const std::int64_t t = utt.frames.dim(0);
      Tensor frames = utt.frames.reshaped({t, 1, b.cfg.feature_dim});
      arena.reset();
      ArenaScope scope(&arena);
      hyps.push_back(b.model.greedy_decode(frames, SpeechTask::kBos,
                                           SpeechTask::kEos, ectx));
    }
    return word_error_rate(refs, hyps);
  });
}

void calibrate_seq2seq_activations(Seq2SeqBundle& b, int batches,
                                   std::uint64_t seed, Quantizer* weight_q) {
  Pcg32 rng(seed, 0x7213);
  const ActQuantMode prev = b.model.act_quant().mode();
  b.model.act_quant().reset_stats();
  b.model.act_quant().set_mode(ActQuantMode::kCalibrate);
  with_optional_weight_quant(b.model.parameters(), weight_q, [&] {
    for (int i = 0; i < batches; ++i) {
      auto data = b.task.sample_batch(8, rng);
      std::vector<TokenSeq> tgt_in;
      for (const auto& transcript : data.transcripts) {
        TokenSeq in = {SpeechTask::kBos};
        in.insert(in.end(), transcript.begin(), transcript.end());
        tgt_in.push_back(std::move(in));
      }
      b.model.forward(data.frames, tgt_in);
      b.model.clear_caches();
    }
  });
  b.model.act_quant().set_mode(prev);
}

// ----- ResNet ----------------------------------------------------------------

ResNetBundle::ResNetBundle(std::uint64_t seed, ResNetConfig config)
    : cfg(config),
      task(config.num_classes, config.in_channels, config.image_size,
           /*noise=*/0.3f, seed),
      model(config, seed) {}

float train_resnet(ResNetBundle& b, int steps, int batch, float lr,
                   std::uint64_t seed, Quantizer* weight_q) {
  Pcg32 rng(seed, 0x7311);
  Adam opt(b.model.parameters(), lr);
  // Standard CNN recipe: decoupled weight decay on the conv/linear weights
  // (batch norm makes the function scale-invariant, so decay shrinks the
  // weights without hurting accuracy — the "weight normalization side
  // effect" behind the narrow CNN distributions of paper Figure 1).
  std::vector<Parameter*> decayed;
  for (Parameter* p : b.model.parameters()) {
    if (p->name.find(".weight") != std::string::npos ||
        p->name.find("stem") == 0 || p->name.find("fc.") == 0) {
      if (p->name.find("bn") == std::string::npos) decayed.push_back(p);
    }
  }
  opt.set_weight_decay(0.25f, decayed);
  double recent = 0.0;
  int recent_n = 0;
  for (int step = 0; step < steps; ++step) {
    auto data = b.task.sample_batch(batch, rng);
    b.model.zero_grad();
    float loss;
    {
      std::optional<WeightQuantScope> scope;
      if (weight_q) scope.emplace(b.model.parameters(), *weight_q);
      Tensor logits = b.model.forward(data.images, /*training=*/true);
      auto res = softmax_cross_entropy(logits, data.labels);
      loss = res.loss;
      b.model.backward(res.dlogits);
    }
    clip_grad_norm(b.model.parameters(), 5.0f);
    opt.step();
    if (step >= steps - 20) {
      recent += loss;
      ++recent_n;
    }
  }
  return recent_n ? static_cast<float>(recent / recent_n) : 0.0f;
}

double eval_resnet_top1(ResNetBundle& b, int num_images, Quantizer* weight_q) {
  Pcg32 rng(kEvalSeed, 0x7312);
  return with_optional_weight_quant(b.model.parameters(), weight_q, [&] {
    std::vector<std::int64_t> labels, preds;
    const std::int64_t batch = 32;
    std::int64_t remaining = num_images;
    // Context-driven inference: the forward pushes no caches, and every
    // batch's activations recycle through one arena (the task sampling
    // stays on the heap — it happens outside the scope).
    ExecutionContext ectx;
    Arena arena;
    while (remaining > 0) {
      const std::int64_t n = std::min(batch, remaining);
      auto data = b.task.sample_batch(n, rng);
      arena.reset();
      std::vector<std::int64_t> p;
      {
        ArenaScope scope(&arena);
        p = argmax_rows(b.model.forward(data.images, ectx));
      }
      labels.insert(labels.end(), data.labels.begin(), data.labels.end());
      preds.insert(preds.end(), p.begin(), p.end());
      remaining -= n;
    }
    return top1_accuracy(labels, preds);
  });
}

void calibrate_resnet_activations(ResNetBundle& b, int batches,
                                  std::uint64_t seed, Quantizer* weight_q) {
  Pcg32 rng(seed, 0x7313);
  const ActQuantMode prev = b.model.act_quant().mode();
  b.model.act_quant().reset_stats();
  b.model.act_quant().set_mode(ActQuantMode::kCalibrate);
  with_optional_weight_quant(b.model.parameters(), weight_q, [&] {
    for (int i = 0; i < batches; ++i) {
      auto data = b.task.sample_batch(16, rng);
      b.model.forward(data.images, /*training=*/false);
      b.model.clear_caches();
    }
  });
  b.model.act_quant().set_mode(prev);
}

}  // namespace af
