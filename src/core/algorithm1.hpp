// Algorithm 1 of the paper: AdaptivFloat quantization of a tensor.
//
// The algorithm picks the exponent bias that makes the format's dynamic
// range bracket the tensor's max-abs value, then rounds every element to
// the nearest representable datapoint:
//
//   find exp_max with 2^exp_max <= max(|W|) < 2^(exp_max+1)
//   exp_bias  = exp_max - (2^e - 1)
//   value_min = 2^exp_bias * (1 + 2^-m)
//   value_max = 2^exp_max  * (2 - 2^-m)
//   round |w| < value_min to 0 or value_min at the halfway threshold
//   clamp |w| > value_max to value_max
//   quantize the mantissas at scale 2^-m and reconstruct.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/adaptivfloat.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// Chooses the exponent bias for data whose max-abs is `max_abs`
/// (lines 4-5 of Algorithm 1). For an all-zero tensor (max_abs == 0) the
/// bias defaults to -(2^e - 1), i.e. exp_max = 0.
AdaptivFloatFormat format_for_max_abs(float max_abs, int bits, int exp_bits);

/// Convenience: bias from a tensor's max-abs.
AdaptivFloatFormat format_for_tensor(const Tensor& w, int bits, int exp_bits);

/// Result of quantizing one tensor with Algorithm 1.
struct AdaptivFloatQuantResult {
  AdaptivFloatFormat format;       ///< chosen format (carries exp_bias)
  Tensor quantized;                ///< W_adaptiv — reconstructed values
  std::vector<std::uint16_t> codes;  ///< the n-bit encodings, one per element
};

/// Runs Algorithm 1 end to end on `w`.
AdaptivFloatQuantResult adaptivfloat_quantize(const Tensor& w, int bits,
                                              int exp_bits);

}  // namespace af
