#include "src/core/channel_quant.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/algorithm1.hpp"
#include "src/kernels/decode_lut.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {

ChannelQuantResult adaptivfloat_quantize_per_channel(const Tensor& w,
                                                     int bits, int exp_bits) {
  AF_CHECK(w.rank() == 2, "per-channel quantization expects [out, in]");
  const std::int64_t rows = w.dim(0), cols = w.dim(1);
  ChannelQuantResult res{
      {}, Tensor(w.shape()), std::vector<std::uint16_t>(
                                 static_cast<std::size_t>(w.numel()))};
  res.formats.reserve(static_cast<std::size_t>(rows));
  // Pass 1 (serial, cheap): per-row format from the row's max-abs. The
  // formats vector drives pass 2 and is part of the result.
  for (std::int64_t r = 0; r < rows; ++r) {
    float row_max = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      row_max = std::max(row_max, std::fabs(w[r * cols + c]));
    }
    res.formats.push_back(format_for_max_abs(row_max, bits, exp_bits));
  }
  // Pass 2: encode + decode each row. Rows are independent and every chunk
  // writes a disjoint row range, so results are bit-identical for any
  // AF_THREADS value. Wide rows decode through a per-row table (the
  // 2^bits-entry build amortizes over the row); narrow rows stay scalar —
  // the table is built from fmt.decode, so the values match either way.
  constexpr std::int64_t kRowGrain = 4;
  parallel_for(0, rows, kRowGrain, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const AdaptivFloatFormat& fmt =
          res.formats[static_cast<std::size_t>(r)];
      DecodeLut lut;
      if (cols >= fmt.num_codes()) {
        lut = DecodeLut(bits,
                        [&](std::uint16_t c) { return fmt.decode(c); });
      }
      for (std::int64_t c = 0; c < cols; ++c) {
        const std::uint16_t code = fmt.encode(w[r * cols + c]);
        res.codes[static_cast<std::size_t>(r * cols + c)] = code;
        res.quantized[r * cols + c] =
            lut.empty() ? fmt.decode(code) : lut[code];
      }
    }
  });
  return res;
}

double rms_between(const Tensor& a, const Tensor& b) {
  AF_CHECK(a.shape() == b.shape(), "rms_between shape mismatch");
  AF_CHECK(a.numel() > 0, "rms_between on empty tensors");
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = double(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.numel()));
}

}  // namespace af
