#include "src/core/channel_quant.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/algorithm1.hpp"
#include "src/util/check.hpp"

namespace af {

ChannelQuantResult adaptivfloat_quantize_per_channel(const Tensor& w,
                                                     int bits, int exp_bits) {
  AF_CHECK(w.rank() == 2, "per-channel quantization expects [out, in]");
  const std::int64_t rows = w.dim(0), cols = w.dim(1);
  ChannelQuantResult res{
      {}, Tensor(w.shape()), std::vector<std::uint16_t>(
                                 static_cast<std::size_t>(w.numel()))};
  res.formats.reserve(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    float row_max = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      row_max = std::max(row_max, std::fabs(w[r * cols + c]));
    }
    AdaptivFloatFormat fmt = format_for_max_abs(row_max, bits, exp_bits);
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::uint16_t code = fmt.encode(w[r * cols + c]);
      res.codes[static_cast<std::size_t>(r * cols + c)] = code;
      res.quantized[r * cols + c] = fmt.decode(code);
    }
    res.formats.push_back(fmt);
  }
  return res;
}

double rms_between(const Tensor& a, const Tensor& b) {
  AF_CHECK(a.shape() == b.shape(), "rms_between shape mismatch");
  AF_CHECK(a.numel() > 0, "rms_between on empty tensors");
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = double(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.numel()));
}

}  // namespace af
