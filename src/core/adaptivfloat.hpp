// The AdaptivFloat number format (Tambe et al., DAC 2020, Section 3.1).
//
// AdaptivFloat<n,e> is a sign/exponent/mantissa format like IEEE 754 with
// three deliberate deviations that simplify hardware:
//   1. no denormal values — every nonzero value has an implied leading 1;
//   2. the all-zero exponent+mantissa bit pattern means exact 0, sacrificing
//      the +/- minimum normal values (paper Figure 2);
//   3. no infinities or NaNs — quantization clamps into range instead.
// A per-tensor integer exponent bias `exp_bias` shifts the whole
// representable range so it brackets the tensor being encoded; selecting
// that bias is Algorithm 1 (see algorithm1.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace af {

/// A concrete AdaptivFloat format: total width, exponent width and the
/// per-tensor exponent bias. Codes are the low `bits()` bits of a uint16_t,
/// laid out [ sign | exponent | mantissa ] from MSB to LSB.
class AdaptivFloatFormat {
 public:
  /// Constructs AdaptivFloat<bits, exp_bits> with the given exponent bias.
  /// Requires 2 <= bits <= 16, 0 <= exp_bits <= bits - 1 (one bit is the
  /// sign; mantissa gets the rest).
  AdaptivFloatFormat(int bits, int exp_bits, int exp_bias);

  int bits() const { return bits_; }
  int exp_bits() const { return exp_bits_; }
  int mant_bits() const { return mant_bits_; }
  int exp_bias() const { return exp_bias_; }

  /// Largest unbiased exponent: exp_bias + 2^e - 1.
  int exp_max() const { return exp_bias_ + (1 << exp_bits_) - 1; }

  /// Smallest positive representable magnitude after the zero rule:
  /// 2^exp_bias * (1 + 2^-m)   (paper Algorithm 1, value_min).
  float value_min() const;

  /// Largest representable magnitude: 2^exp_max * (2 - 2^-m).
  float value_max() const;

  /// Number of distinct bit patterns (2^bits).
  int num_codes() const { return 1 << bits_; }

  // ----- codec -------------------------------------------------------------

  /// Decodes an n-bit code. Codes with exponent==0 and mantissa==0 decode to
  /// 0 regardless of sign (the +/-0 slots of Figure 2).
  float decode(std::uint16_t code) const;

  /// Encodes by rounding to the nearest representable value
  /// (ties-to-even mantissa), with sub-value_min rounding to 0 or value_min
  /// at the halfway point and clamping at +/-value_max. Non-finite inputs
  /// are well-defined (the format has no NaN/Inf slots to pass them
  /// through): NaN encodes to the zero code, +/-Inf saturates to
  /// +/-value_max.
  std::uint16_t encode(float x) const;

  /// decode(encode(x)) — the quantization function the paper applies to
  /// tensors.
  float quantize(float x) const;

  /// All representable values, sorted ascending, including one 0 entry
  /// (2^bits - 1 distinct values since +0 and -0 coincide).
  std::vector<float> representable_values() const;

  /// "AdaptivFloat<8,3> bias=-6"
  std::string to_string() const;

  bool operator==(const AdaptivFloatFormat& o) const {
    return bits_ == o.bits_ && exp_bits_ == o.exp_bits_ &&
           exp_bias_ == o.exp_bias_;
  }

  // ----- field helpers used by the HFINT hardware model ---------------------
  std::uint16_t sign_of(std::uint16_t code) const {
    return static_cast<std::uint16_t>((code >> (bits_ - 1)) & 1u);
  }
  std::uint16_t exp_field(std::uint16_t code) const {
    return static_cast<std::uint16_t>((code >> mant_bits_) &
                                      ((1u << exp_bits_) - 1u));
  }
  std::uint16_t mant_field(std::uint16_t code) const {
    return static_cast<std::uint16_t>(code & ((1u << mant_bits_) - 1u));
  }
  /// True iff the code is the canonical zero pattern (exp==0 && mant==0).
  bool is_zero_code(std::uint16_t code) const {
    return exp_field(code) == 0 && mant_field(code) == 0;
  }
  std::uint16_t make_code(std::uint16_t sign, std::uint16_t exp,
                          std::uint16_t mant) const;

 private:
  int bits_;
  int exp_bits_;
  int mant_bits_;
  int exp_bias_;
};

}  // namespace af
