// Dense bit-packing of AdaptivFloat-encoded tensors.
//
// "AdaptivFloat's superior bit compression ability paves the way to
// efficient bit packing into resource-constrained accelerators" (paper
// Section 5). This module provides the storage half of that claim: n-bit
// codes packed back-to-back into a byte stream (LSB-first within each
// byte), with exact round-trip decode. An 8-bit-quantized tensor occupies
// 25% of its FP32 footprint; a 4-bit one 12.5%.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/adaptivfloat.hpp"
#include "src/kernels/decode_lut.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// Packs `count` codes of `bits` width each into ceil(count*bits/8) bytes.
/// Codes must fit in `bits` (checked). The unused high bits of the final
/// partial byte are always zero.
std::vector<std::uint8_t> pack_codes(const std::vector<std::uint16_t>& codes,
                                     int bits);

/// How unpack_codes treats stray high bits in the final partial byte —
/// bits pack_codes always leaves zero, so a nonzero one proves the payload
/// was corrupted or mis-sized.
enum class StrayBits {
  kReject,  ///< throw af::Error on any nonzero stray bit (default)
  kMask,    ///< ignore stray bits (resilience paths scrub payloads that
            ///< may legally carry flipped tail bits)
};

/// Inverse of pack_codes. When the payload is exactly ceil(count*bits/8)
/// bytes, stray high bits in the final byte are policed per `policy`;
/// oversized payloads (more bytes than the codes need) are accepted and
/// their trailing bytes are never inspected.
std::vector<std::uint16_t> unpack_codes(const std::vector<std::uint8_t>& bytes,
                                        int bits, std::size_t count,
                                        StrayBits policy = StrayBits::kReject);

/// Span form of unpack_codes — the zero-copy paths (mmap'd snapshot
/// sections) have bytes that live in a mapping, not a vector.
std::vector<std::uint16_t> unpack_codes(const std::uint8_t* bytes,
                                        std::size_t nbytes, int bits,
                                        std::size_t count,
                                        StrayBits policy = StrayBits::kReject);

/// A tensor stored as packed AdaptivFloat codes: the deployment format a
/// weight buffer would hold. Carries its shape and the format (including
/// the per-tensor exp_bias) needed to reconstruct values.
///
/// Storage is either owned (a private byte vector, the default) or a
/// zero-copy view over externally managed bytes — an mmap'd snapshot
/// section. A view shares ownership of its backing store through a
/// type-erased keepalive, so the mapping outlives every tensor cut from it.
class PackedAdaptivFloatTensor {
 public:
  /// Quantizes and packs with Algorithm 1 (bias from max-abs).
  static PackedAdaptivFloatTensor quantize_pack(const Tensor& w, int bits,
                                                int exp_bits);

  /// Zero-copy view over an external payload of exactly
  /// ceil(numel*bits/8) bytes (checked). `keepalive` shares ownership of
  /// whatever object keeps `data` mapped (may be null when the caller
  /// guarantees the span outlives the tensor).
  static PackedAdaptivFloatTensor view(const AdaptivFloatFormat& format,
                                       Shape shape, const std::uint8_t* data,
                                       std::size_t len,
                                       std::shared_ptr<const void> keepalive);

  PackedAdaptivFloatTensor(const PackedAdaptivFloatTensor& other);
  PackedAdaptivFloatTensor& operator=(const PackedAdaptivFloatTensor& other);
  PackedAdaptivFloatTensor(PackedAdaptivFloatTensor&& other) noexcept;
  PackedAdaptivFloatTensor& operator=(
      PackedAdaptivFloatTensor&& other) noexcept;
  ~PackedAdaptivFloatTensor() = default;

  /// Decodes every element back to an FP32 tensor (== the fake-quantized
  /// tensor Algorithm 1 produces).
  Tensor unpack() const;

  const AdaptivFloatFormat& format() const { return format_; }
  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return numel_of(shape_); }

  /// Packed payload size in bytes (excluding the format metadata).
  std::size_t payload_bytes() const { return size_; }

  /// Storage relative to FP32: bits / 32.
  double compression_ratio() const {
    return static_cast<double>(format_.bits()) / 32.0;
  }

  /// Random access to one element without unpacking the rest.
  float value_at(std::int64_t index) const;

  /// Payload bytes — owned buffer or external view, uniformly.
  const std::uint8_t* data() const { return data_; }

  /// True when the payload lives in externally managed storage (a mapped
  /// snapshot) rather than this tensor's own buffer.
  bool is_view() const { return data_ != bytes_.data(); }

  /// Owned storage only (views have no vector to hand out); prefer
  /// data()/payload_bytes(), which work for both.
  const std::vector<std::uint8_t>& bytes() const {
    AF_CHECK(!is_view(), "bytes() on a view-backed packed tensor");
    return bytes_;
  }

  /// Per-tensor code -> FP32 decode table (2^bits entries), built once at
  /// construction from the format's decode(). The tensor is immutable
  /// (payload and format are fixed by quantize_pack), so the table can
  /// never go stale; mutable payloads (ProtectedPackedTensor) rebuild
  /// values from the live bytes on every unpack instead.
  const DecodeLut& decode_lut() const { return *lut_; }

 private:
  PackedAdaptivFloatTensor(AdaptivFloatFormat format, Shape shape,
                           std::vector<std::uint8_t> bytes);
  PackedAdaptivFloatTensor(AdaptivFloatFormat format, Shape shape,
                           const std::uint8_t* data, std::size_t len,
                           std::shared_ptr<const void> keepalive);

  std::uint16_t code_at(std::int64_t index) const;

  AdaptivFloatFormat format_;
  Shape shape_;
  std::vector<std::uint8_t> bytes_;     ///< owned storage; empty for views
  const std::uint8_t* data_ = nullptr;  ///< payload (owned or external)
  std::size_t size_ = 0;                ///< payload byte count
  std::shared_ptr<const void> keepalive_;  ///< view backing-store owner
  std::shared_ptr<const DecodeLut> lut_;  // shared by copies; immutable
};

}  // namespace af
