#include "src/core/bitpack.hpp"

#include "src/core/algorithm1.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

/// The StrayBits::kReject policing of unpack_codes, shared by the fused
/// unpack path: bits beyond the last code in an exactly-sized payload must
/// be zero (pack_codes always leaves them zero).
void check_no_stray_bits(const std::vector<std::uint8_t>& bytes, int bits,
                         std::size_t count) {
  const std::size_t used_bits = count * static_cast<std::size_t>(bits);
  if (bytes.size() == (used_bits + 7) / 8 && (used_bits & 7) != 0) {
    const auto stray =
        static_cast<std::uint8_t>(bytes.back() >> (used_bits & 7));
    AF_CHECK(stray == 0,
             "stray high bits set in the final partial byte (corrupt or "
             "mis-sized payload); pass StrayBits::kMask to ignore them");
  }
}

}  // namespace

std::vector<std::uint8_t> pack_codes(const std::vector<std::uint16_t>& codes,
                                     int bits) {
  AF_CHECK(bits >= 1 && bits <= 16, "code width must be in [1,16]");
  const std::size_t total_bits = codes.size() * static_cast<std::size_t>(bits);
  std::vector<std::uint8_t> out((total_bits + 7) / 8, 0);
  std::size_t bitpos = 0;
  for (std::uint16_t code : codes) {
    AF_CHECK(code < (1u << bits), "code wider than declared width");
    for (int b = 0; b < bits; ++b, ++bitpos) {
      if ((code >> b) & 1u) {
        out[bitpos >> 3] |= static_cast<std::uint8_t>(1u << (bitpos & 7));
      }
    }
  }
  return out;
}

std::vector<std::uint16_t> unpack_codes(const std::vector<std::uint8_t>& bytes,
                                        int bits, std::size_t count,
                                        StrayBits policy) {
  AF_CHECK(bits >= 1 && bits <= 16, "code width must be in [1,16]");
  const std::size_t used_bits = count * static_cast<std::size_t>(bits);
  AF_CHECK(bytes.size() * 8 >= used_bits,
           "packed payload too small for the requested element count");
  if (policy == StrayBits::kReject && bytes.size() == (used_bits + 7) / 8 &&
      (used_bits & 7) != 0) {
    const auto stray = static_cast<std::uint8_t>(
        bytes.back() >> (used_bits & 7));
    AF_CHECK(stray == 0,
             "stray high bits set in the final partial byte (corrupt or "
             "mis-sized payload); pass StrayBits::kMask to ignore them");
  }
  std::vector<std::uint16_t> out(count, 0);
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint16_t code = 0;
    for (int b = 0; b < bits; ++b, ++bitpos) {
      if ((bytes[bitpos >> 3] >> (bitpos & 7)) & 1u) {
        code |= static_cast<std::uint16_t>(1u << b);
      }
    }
    out[i] = code;
  }
  return out;
}

PackedAdaptivFloatTensor::PackedAdaptivFloatTensor(
    AdaptivFloatFormat format, Shape shape, std::vector<std::uint8_t> bytes)
    : format_(format),
      shape_(std::move(shape)),
      bytes_(std::move(bytes)),
      lut_(std::make_shared<DecodeLut>(
          format_.bits(),
          [this](std::uint16_t code) { return format_.decode(code); })) {}

PackedAdaptivFloatTensor PackedAdaptivFloatTensor::quantize_pack(
    const Tensor& w, int bits, int exp_bits) {
  auto res = adaptivfloat_quantize(w, bits, exp_bits);
  return PackedAdaptivFloatTensor(res.format, w.shape(),
                                  pack_codes(res.codes, bits));
}

Tensor PackedAdaptivFloatTensor::unpack() const {
  const auto count = static_cast<std::size_t>(numel());
  const int bits = format_.bits();
  check_no_stray_bits(bytes_, bits, count);
  Tensor out(shape_);
  // Fused unpack+decode through the cached table; disjoint output chunks,
  // so bit-identical for any AF_THREADS value.
  constexpr std::int64_t kGrain = 1 << 12;
  parallel_for(0, numel(), kGrain, [&](std::int64_t b, std::int64_t e) {
    unpack_decode(bytes_.data(), bytes_.size(), bits, b, e - b, *lut_,
                  out.data() + b);
  });
  return out;
}

std::uint16_t PackedAdaptivFloatTensor::code_at(std::int64_t index) const {
  AF_CHECK(index >= 0 && index < numel(), "packed index out of range");
  const int bits = format_.bits();
  std::size_t bitpos =
      static_cast<std::size_t>(index) * static_cast<std::size_t>(bits);
  std::uint16_t code = 0;
  for (int b = 0; b < bits; ++b, ++bitpos) {
    if ((bytes_[bitpos >> 3] >> (bitpos & 7)) & 1u) {
      code |= static_cast<std::uint16_t>(1u << b);
    }
  }
  return code;
}

float PackedAdaptivFloatTensor::value_at(std::int64_t index) const {
  return (*lut_)[code_at(index)];
}

}  // namespace af
