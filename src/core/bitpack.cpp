#include "src/core/bitpack.hpp"

#include "src/core/algorithm1.hpp"
#include "src/kernels/backend.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

/// The StrayBits::kReject policing of unpack_codes, shared by the fused
/// unpack path: bits beyond the last code in an exactly-sized payload must
/// be zero (pack_codes always leaves them zero).
void check_no_stray_bits(const std::uint8_t* bytes, std::size_t nbytes,
                         int bits, std::size_t count) {
  const std::size_t used_bits = count * static_cast<std::size_t>(bits);
  if (nbytes == (used_bits + 7) / 8 && (used_bits & 7) != 0) {
    const auto stray =
        static_cast<std::uint8_t>(bytes[nbytes - 1] >> (used_bits & 7));
    AF_CHECK(stray == 0,
             "stray high bits set in the final partial byte (corrupt or "
             "mis-sized payload); pass StrayBits::kMask to ignore them");
  }
}

}  // namespace

std::vector<std::uint8_t> pack_codes(const std::vector<std::uint16_t>& codes,
                                     int bits) {
  AF_CHECK(bits >= 1 && bits <= 16, "code width must be in [1,16]");
  const std::size_t total_bits = codes.size() * static_cast<std::size_t>(bits);
  std::vector<std::uint8_t> out((total_bits + 7) / 8, 0);
  std::size_t bitpos = 0;
  for (std::uint16_t code : codes) {
    AF_CHECK(code < (1u << bits), "code wider than declared width");
    for (int b = 0; b < bits; ++b, ++bitpos) {
      if ((code >> b) & 1u) {
        out[bitpos >> 3] |= static_cast<std::uint8_t>(1u << (bitpos & 7));
      }
    }
  }
  return out;
}

std::vector<std::uint16_t> unpack_codes(const std::vector<std::uint8_t>& bytes,
                                        int bits, std::size_t count,
                                        StrayBits policy) {
  return unpack_codes(bytes.data(), bytes.size(), bits, count, policy);
}

std::vector<std::uint16_t> unpack_codes(const std::uint8_t* bytes,
                                        std::size_t nbytes, int bits,
                                        std::size_t count, StrayBits policy) {
  AF_CHECK(bits >= 1 && bits <= 16, "code width must be in [1,16]");
  const std::size_t used_bits = count * static_cast<std::size_t>(bits);
  AF_CHECK(nbytes * 8 >= used_bits,
           "packed payload too small for the requested element count");
  if (policy == StrayBits::kReject) {
    check_no_stray_bits(bytes, nbytes, bits, count);
  }
  std::vector<std::uint16_t> out(count, 0);
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint16_t code = 0;
    for (int b = 0; b < bits; ++b, ++bitpos) {
      if ((bytes[bitpos >> 3] >> (bitpos & 7)) & 1u) {
        code |= static_cast<std::uint16_t>(1u << b);
      }
    }
    out[i] = code;
  }
  return out;
}

PackedAdaptivFloatTensor::PackedAdaptivFloatTensor(
    AdaptivFloatFormat format, Shape shape, std::vector<std::uint8_t> bytes)
    : format_(format),
      shape_(std::move(shape)),
      bytes_(std::move(bytes)),
      data_(bytes_.data()),
      size_(bytes_.size()),
      lut_(std::make_shared<DecodeLut>(
          format_.bits(),
          [this](std::uint16_t code) { return format_.decode(code); })) {}

PackedAdaptivFloatTensor::PackedAdaptivFloatTensor(
    AdaptivFloatFormat format, Shape shape, const std::uint8_t* data,
    std::size_t len, std::shared_ptr<const void> keepalive)
    : format_(format),
      shape_(std::move(shape)),
      data_(data),
      size_(len),
      keepalive_(std::move(keepalive)),
      lut_(std::make_shared<DecodeLut>(
          format_.bits(),
          [this](std::uint16_t code) { return format_.decode(code); })) {}

// Copies must re-anchor data_ — an owned tensor's pointer targets its own
// vector, never the source's. Views share the external span and keepalive.
PackedAdaptivFloatTensor::PackedAdaptivFloatTensor(
    const PackedAdaptivFloatTensor& other)
    : format_(other.format_),
      shape_(other.shape_),
      bytes_(other.bytes_),
      data_(other.is_view() ? other.data_ : bytes_.data()),
      size_(other.size_),
      keepalive_(other.keepalive_),
      lut_(other.lut_) {}

PackedAdaptivFloatTensor& PackedAdaptivFloatTensor::operator=(
    const PackedAdaptivFloatTensor& other) {
  if (this == &other) return *this;
  format_ = other.format_;
  shape_ = other.shape_;
  bytes_ = other.bytes_;
  data_ = other.is_view() ? other.data_ : bytes_.data();
  size_ = other.size_;
  keepalive_ = other.keepalive_;
  lut_ = other.lut_;
  return *this;
}

// Moving a vector transfers its heap buffer verbatim, so data_ stays valid
// for owned tensors and external for views — it moves unchanged.
PackedAdaptivFloatTensor::PackedAdaptivFloatTensor(
    PackedAdaptivFloatTensor&& other) noexcept
    : format_(other.format_),
      shape_(std::move(other.shape_)),
      bytes_(std::move(other.bytes_)),
      data_(other.data_),
      size_(other.size_),
      keepalive_(std::move(other.keepalive_)),
      lut_(std::move(other.lut_)) {}

PackedAdaptivFloatTensor& PackedAdaptivFloatTensor::operator=(
    PackedAdaptivFloatTensor&& other) noexcept {
  if (this == &other) return *this;
  format_ = other.format_;
  shape_ = std::move(other.shape_);
  bytes_ = std::move(other.bytes_);
  data_ = other.data_;
  size_ = other.size_;
  keepalive_ = std::move(other.keepalive_);
  lut_ = std::move(other.lut_);
  return *this;
}

PackedAdaptivFloatTensor PackedAdaptivFloatTensor::quantize_pack(
    const Tensor& w, int bits, int exp_bits) {
  auto res = adaptivfloat_quantize(w, bits, exp_bits);
  return PackedAdaptivFloatTensor(res.format, w.shape(),
                                  pack_codes(res.codes, bits));
}

PackedAdaptivFloatTensor PackedAdaptivFloatTensor::view(
    const AdaptivFloatFormat& format, Shape shape, const std::uint8_t* data,
    std::size_t len, std::shared_ptr<const void> keepalive) {
  const std::size_t need =
      (static_cast<std::size_t>(numel_of(shape)) *
           static_cast<std::size_t>(format.bits()) + 7) / 8;
  AF_CHECK(len == need, "view payload size does not match shape and width");
  return PackedAdaptivFloatTensor(format, std::move(shape), data, len,
                                  std::move(keepalive));
}

Tensor PackedAdaptivFloatTensor::unpack() const {
  const auto count = static_cast<std::size_t>(numel());
  const int bits = format_.bits();
  check_no_stray_bits(data_, size_, bits, count);
  Tensor out(shape_);
  // Fused unpack+decode through the cached table; disjoint output chunks,
  // so bit-identical for any AF_THREADS value (and across backends — the
  // decode is a pure table map).
  const KernelBackend& be = active_backend();
  count_backend_dispatch(be);
  const float* table = lut_->data();
  constexpr std::int64_t kGrain = 1 << 12;
  parallel_for(0, numel(), kGrain, [&](std::int64_t b, std::int64_t e) {
    be.unpack_decode(data_, size_, bits, b, e - b, table, out.data() + b);
  });
  return out;
}

std::uint16_t PackedAdaptivFloatTensor::code_at(std::int64_t index) const {
  AF_CHECK(index >= 0 && index < numel(), "packed index out of range");
  const int bits = format_.bits();
  std::size_t bitpos =
      static_cast<std::size_t>(index) * static_cast<std::size_t>(bits);
  std::uint16_t code = 0;
  for (int b = 0; b < bits; ++b, ++bitpos) {
    if ((data_[bitpos >> 3] >> (bitpos & 7)) & 1u) {
      code |= static_cast<std::uint16_t>(1u << b);
    }
  }
  return code;
}

float PackedAdaptivFloatTensor::value_at(std::int64_t index) const {
  return (*lut_)[code_at(index)];
}

}  // namespace af
