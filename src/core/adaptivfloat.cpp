#include "src/core/adaptivfloat.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace af {

AdaptivFloatFormat::AdaptivFloatFormat(int bits, int exp_bits, int exp_bias)
    : bits_(bits),
      exp_bits_(exp_bits),
      mant_bits_(bits - exp_bits - 1),
      exp_bias_(exp_bias) {
  AF_CHECK(bits >= 2 && bits <= 16, "AdaptivFloat width must be in [2,16]");
  AF_CHECK(exp_bits >= 0 && exp_bits <= bits - 1,
           "exponent width must leave room for the sign bit");
}

float AdaptivFloatFormat::value_min() const {
  return std::ldexp(1.0f + std::ldexp(1.0f, -mant_bits_), exp_bias_);
}

float AdaptivFloatFormat::value_max() const {
  return std::ldexp(2.0f - std::ldexp(1.0f, -mant_bits_), exp_max());
}

std::uint16_t AdaptivFloatFormat::make_code(std::uint16_t sign,
                                            std::uint16_t exp,
                                            std::uint16_t mant) const {
  AF_CHECK(sign <= 1, "sign field out of range");
  AF_CHECK(exp < (1u << exp_bits_), "exponent field out of range");
  AF_CHECK(mant < (1u << mant_bits_), "mantissa field out of range");
  return static_cast<std::uint16_t>((sign << (bits_ - 1)) |
                                    (exp << mant_bits_) | mant);
}

float AdaptivFloatFormat::decode(std::uint16_t code) const {
  AF_CHECK(code < (1u << bits_), "code wider than the format");
  if (is_zero_code(code)) return 0.0f;  // +0 and -0 both mean exact zero
  const float sign = sign_of(code) ? -1.0f : 1.0f;
  const int exp = static_cast<int>(exp_field(code)) + exp_bias_;
  const float mant =
      1.0f + std::ldexp(static_cast<float>(mant_field(code)), -mant_bits_);
  return sign * std::ldexp(mant, exp);
}

std::uint16_t AdaptivFloatFormat::encode(float x) const {
  if (x == 0.0f || std::isnan(x)) return 0;
  const std::uint16_t sign = x < 0.0f ? 1 : 0;
  float a = std::fabs(x);

  const float vmin = value_min();
  const float vmax = value_max();

  // Sub-minimum values round to 0 below the halfway threshold and to
  // value_min above it (paper Algorithm 1, "Handle unrepresentable values").
  if (a < vmin) {
    if (a < 0.5f * vmin) return 0;
    // +/- value_min is the code right after zero: combined exponent+mantissa
    // field 1 (E=0,M=1 when mantissa bits exist, E=1,M=0 when m == 0).
    return static_cast<std::uint16_t>((sign << (bits_ - 1)) | 1u);
  }
  if (a >= vmax) {
    return make_code(sign, static_cast<std::uint16_t>((1 << exp_bits_) - 1),
                     static_cast<std::uint16_t>((1 << mant_bits_) - 1));
  }

  // Normalize: a = mant * 2^exp with mant in [1, 2).
  int exp_plus_1 = 0;
  const float frac = std::frexp(a, &exp_plus_1);  // frac in [0.5, 1)
  int exp = exp_plus_1 - 1;
  float mant = 2.0f * frac;

  // Round the mantissa to m fractional bits, ties to even (the default
  // FE_TONEAREST behaviour of nearbyint).
  auto q = static_cast<std::int64_t>(
      std::nearbyint(std::ldexp(mant, mant_bits_)));
  if (q == (std::int64_t{1} << (mant_bits_ + 1))) {
    q >>= 1;  // mantissa rounded up to 2.0: carry into the exponent
    ++exp;
  }
  if (exp > exp_max()) {
    // Can only occur via the carry right at the top of the range.
    return make_code(sign, static_cast<std::uint16_t>((1 << exp_bits_) - 1),
                     static_cast<std::uint16_t>((1 << mant_bits_) - 1));
  }
  AF_CHECK(exp >= exp_bias_, "normalized exponent below bias after clamping");
  const auto exp_f = static_cast<std::uint16_t>(exp - exp_bias_);
  const auto mant_f =
      static_cast<std::uint16_t>(q - (std::int64_t{1} << mant_bits_));
  return make_code(sign, exp_f, mant_f);
}

float AdaptivFloatFormat::quantize(float x) const { return decode(encode(x)); }

std::vector<float> AdaptivFloatFormat::representable_values() const {
  std::vector<float> vals;
  vals.reserve(static_cast<std::size_t>(num_codes()));
  for (int c = 0; c < num_codes(); ++c) {
    vals.push_back(decode(static_cast<std::uint16_t>(c)));
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

std::string AdaptivFloatFormat::to_string() const {
  return "AdaptivFloat<" + std::to_string(bits_) + "," +
         std::to_string(exp_bits_) + "> bias=" + std::to_string(exp_bias_);
}

}  // namespace af
