#include "src/core/algorithm1.hpp"

#include <cmath>

#include "src/kernels/nearest_lut.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

/// floor(log2(x)) for x > 0, exact for powers of two.
int floor_log2(float x) {
  int e = 0;
  (void)std::frexp(x, &e);  // x = f * 2^e, f in [0.5, 1)
  return e - 1;
}

}  // namespace

AdaptivFloatFormat format_for_max_abs(float max_abs, int bits, int exp_bits) {
  AF_CHECK(max_abs >= 0.0f && std::isfinite(max_abs),
           "max_abs must be finite and non-negative");
  const int full_scale = (1 << exp_bits) - 1;
  if (max_abs == 0.0f) {
    return AdaptivFloatFormat(bits, exp_bits, -full_scale);
  }
  const int exp_max = floor_log2(max_abs);
  return AdaptivFloatFormat(bits, exp_bits, exp_max - full_scale);
}

AdaptivFloatFormat format_for_tensor(const Tensor& w, int bits, int exp_bits) {
  return format_for_max_abs(w.max_abs(), bits, exp_bits);
}

AdaptivFloatQuantResult adaptivfloat_quantize(const Tensor& w, int bits,
                                              int exp_bits) {
  // This follows the matrix formulation of Algorithm 1 step by step; the
  // codec in AdaptivFloatFormat implements the same mapping per value and
  // the two are cross-checked in tests.
  AdaptivFloatFormat fmt = format_for_tensor(w, bits, exp_bits);
  const int m = fmt.mant_bits();
  const float vmin = fmt.value_min();
  const float vmax = fmt.value_max();

  AdaptivFloatQuantResult out{fmt, Tensor(w.shape()), {}};
  out.codes.resize(static_cast<std::size_t>(w.numel()));

  // Bulk tensors take the table-driven encode: the rounding intervals are
  // bisected against fmt.encode itself, so lut.code_of(x) == fmt.encode(x)
  // for every input — the LUT only removes the per-element field
  // arithmetic. Small tensors keep the scalar encode (the build would
  // dominate); codes are identical either way.
  NearestLut enc_lut;
  if (w.numel() >= kNearestLutMinBuildElems) {
    enc_lut = build_encode_lut(
        bits, [&](float x) { return fmt.encode(x); },
        [&](std::uint16_t c) { return fmt.decode(c); });
  }

  // Elementwise with disjoint writes per chunk — bit-identical for any
  // AF_THREADS value.
  constexpr std::int64_t kGrain = 1 << 12;
  parallel_for(0, w.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float sign = w[i] < 0.0f ? -1.0f : 1.0f;  // W_sign
      float a = std::fabs(w[i]);                      // W_abs

      // Handle unrepresentable values.
      if (a < vmin) {
        a = (a < 0.5f * vmin) ? 0.0f : vmin;
      } else if (a > vmax) {
        a = vmax;
      }

      float reconstructed = 0.0f;
      if (a != 0.0f) {
        // Normalize into W_exp / W_mant with 1 <= mant < 2, then quantize
        // the mantissa at scale 2^-m.
        int exp_plus_1 = 0;
        const float frac = std::frexp(a, &exp_plus_1);
        int exp = exp_plus_1 - 1;
        float mant_q = std::ldexp(
            static_cast<float>(std::nearbyint(std::ldexp(2.0f * frac, m))),
            -m);
        if (mant_q == 2.0f) {  // carry from mantissa rounding
          mant_q = 1.0f;
          ++exp;
        }
        reconstructed = std::ldexp(mant_q, exp);  // 2^W_exp * W_q
        if (reconstructed > vmax) reconstructed = vmax;
      }
      out.quantized[i] = sign * reconstructed;  // W_sign * 2^W_exp * W_q
      out.codes[static_cast<std::size_t>(i)] =
          enc_lut.empty() ? fmt.encode(w[i]) : enc_lut.code_of(w[i]);
    }
  });
  return out;
}

}  // namespace af
