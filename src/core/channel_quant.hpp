// Per-output-channel AdaptivFloat quantization — a finer-granularity
// extension of the paper's per-layer scheme (DESIGN.md ablation 3).
//
// Each row of a [out, in] weight matrix gets its own exp_bias derived from
// that row's max-abs. Hardware cost is one extra 4-bit bias register per
// output channel (the HFINT PE already holds per-tensor bias registers);
// accuracy improves whenever channel scales differ widely.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/adaptivfloat.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// Result of per-channel quantization of a rank-2 tensor.
struct ChannelQuantResult {
  std::vector<AdaptivFloatFormat> formats;  ///< one per row
  Tensor quantized;                          ///< reconstructed values
  std::vector<std::uint16_t> codes;          ///< row-major codes
};

/// Quantizes each row of w [rows, cols] with its own Algorithm-1 bias.
ChannelQuantResult adaptivfloat_quantize_per_channel(const Tensor& w,
                                                     int bits, int exp_bits);

/// RMS error helper shared by the ablation studies.
double rms_between(const Tensor& a, const Tensor& b);

}  // namespace af
