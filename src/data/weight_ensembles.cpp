#include "src/data/weight_ensembles.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/fault.hpp"

namespace af {

Tensor sample_synthetic_layer(const SyntheticLayerSpec& spec, Pcg32& rng) {
  // Specs arrive as data (ensemble tables, sweep configs), so a bad one is
  // malformed input a sweep harness can catch and skip, not a crash.
  if (!(spec.sigma > 0.0f)) {
    throw FaultError("ensemble:" + spec.name, FaultKind::kMalformedInput,
                     "layer sigma must be positive");
  }
  if (!(spec.outlier_fraction >= 0.0f && spec.outlier_fraction < 1.0f)) {
    throw FaultError("ensemble:" + spec.name, FaultKind::kMalformedInput,
                     "outlier fraction must be in [0, 1)");
  }
  Tensor w(spec.shape);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const bool tail = rng.next_double() < spec.outlier_fraction;
    const float s = tail ? spec.sigma * spec.outlier_scale : spec.sigma;
    float v = rng.normal(0.0f, s);
    v = std::clamp(v, -spec.max_abs, spec.max_abs);
    w[i] = v;
  }
  // Plant one exact-range element so every sampled layer realizes its
  // nominal max-abs (the paper's ranges are observed maxima).
  if (w.numel() > 0) {
    w[0] = (rng.next_u32() & 1u) ? spec.max_abs : -spec.max_abs;
  }
  return w;
}

SyntheticModelSpec transformer_ensemble() {
  // Wide LayerNorm-style statistics: bulk sigma a few percent, outliers up
  // to hundreds of sigma in the embedding/projection layers; overall range
  // matches Table 1's [-12.46, 20.41].
  SyntheticModelSpec m{"Transformer(93M-stats)", {}};
  auto add = [&m](const std::string& n, Shape s, float sigma, float of,
                  float os, float mx) {
    m.layers.push_back({n, std::move(s), sigma, of, os, mx});
  };
  // The extreme outliers live in the embedding/projection tables; the
  // attention/FFN blocks are heavy-tailed but one order of magnitude less
  // so (max/sigma 15-45, vs 100+ for the embeddings), consistent with
  // published per-layer statistics of trained Transformers.
  add("embed", {512, 256}, 0.45f, 5e-3f, 8.0f, 20.41f);
  add("out_proj", {512, 256}, 0.30f, 5e-3f, 8.0f, 12.46f);
  for (int l = 0; l < 6; ++l) {
    const float s = 0.03f + 0.005f * static_cast<float>(l % 3);
    add("enc" + std::to_string(l) + ".attn", {256, 256}, s, 1e-3f, 10.0f,
        0.6f + 0.15f * static_cast<float>(l));
    add("enc" + std::to_string(l) + ".ffn", {512, 256}, s, 1e-3f, 9.0f,
        0.9f + 0.12f * static_cast<float>(l));
  }
  return m;
}

SyntheticModelSpec seq2seq_ensemble() {
  // Moderate LSTM statistics; overall range matches Table 1's [-2.21, 2.39].
  SyntheticModelSpec m{"Seq2Seq(20M-stats)", {}};
  auto add = [&m](const std::string& n, Shape s, float sigma, float of,
                  float os, float mx) {
    m.layers.push_back({n, std::move(s), sigma, of, os, mx});
  };
  for (int l = 0; l < 4; ++l) {
    add("enc_lstm" + std::to_string(l), {512, 256}, 0.05f, 5e-4f, 12.0f,
        1.2f + 0.3f * static_cast<float>(l));
  }
  add("dec_lstm", {512, 256}, 0.05f, 5e-4f, 12.0f, 2.39f);
  add("attn", {256, 256}, 0.04f, 5e-4f, 10.0f, 1.5f);
  add("out_proj", {256, 256}, 0.05f, 1e-3f, 15.0f, 2.21f);
  return m;
}

SyntheticModelSpec resnet_ensemble() {
  // Narrow, near-Gaussian BatchNorm-CNN statistics; range [-0.78, 1.32].
  SyntheticModelSpec m{"ResNet-50(25M-stats)", {}};
  auto add = [&m](const std::string& n, Shape s, float sigma, float of,
                  float os, float mx) {
    m.layers.push_back({n, std::move(s), sigma, of, os, mx});
  };
  add("conv1", {64, 147}, 0.10f, 0.0f, 1.0f, 0.9f);
  for (int l = 0; l < 8; ++l) {
    add("conv" + std::to_string(l + 2), {256, 288}, 0.04f, 1e-4f, 5.0f,
        0.5f + 0.05f * static_cast<float>(l));
  }
  add("fc", {256, 512}, 0.05f, 1e-4f, 6.0f, 1.32f);
  return m;
}

}  // namespace af
