// Distribution-calibrated synthetic weight ensembles.
//
// The paper's evaluation quantizes the weights of 93M/20M/25M-parameter
// models trained for days; their per-layer distributions are heavy-tailed
// (outliers 10-100x the bulk sigma — the reason uniform and BFP collapse at
// low precision). Toy models trained for seconds cannot grow those tails
// organically, so the Figure-4 RMS study additionally runs on synthetic
// layer ensembles whose statistics are calibrated to the paper's Table 1:
//
//   model        range (paper)      character
//   Transformer  [-12.46, 20.41]    wide, heavy outliers (LayerNorm)
//   Seq2Seq      [-2.21, 2.39]      moderate
//   ResNet-50    [-0.78, 1.32]      narrow, near-Gaussian (BatchNorm)
//
// Each layer is a Gaussian scale mixture: bulk N(0, sigma^2) plus an
// outlier fraction at outlier_scale * sigma, clamped to the layer range.
#pragma once

#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"
#include "src/util/rng.hpp"

namespace af {

/// Statistics for one synthetic layer.
struct SyntheticLayerSpec {
  std::string name;
  Shape shape;
  float sigma = 0.05f;            ///< bulk standard deviation
  float outlier_fraction = 0.0f;  ///< fraction of elements in the tail
  float outlier_scale = 1.0f;     ///< tail sigma as a multiple of bulk sigma
  float max_abs = 1.0f;           ///< hard clamp (the layer's range)
};

/// A named collection of layer specs standing in for one of Table 1's models.
struct SyntheticModelSpec {
  std::string name;
  std::vector<SyntheticLayerSpec> layers;
};

/// Draws one layer's weights from its spec.
Tensor sample_synthetic_layer(const SyntheticLayerSpec& spec, Pcg32& rng);

/// The three paper-calibrated model ensembles (Transformer / Seq2Seq /
/// ResNet-50 statistics).
SyntheticModelSpec transformer_ensemble();
SyntheticModelSpec seq2seq_ensemble();
SyntheticModelSpec resnet_ensemble();

}  // namespace af
