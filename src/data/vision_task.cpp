#include "src/data/vision_task.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace af {

VisionTask::VisionTask(std::int64_t num_classes, std::int64_t channels,
                       std::int64_t size, float noise, std::uint64_t seed)
    : num_classes_(num_classes),
      channels_(channels),
      size_(size),
      noise_(noise),
      prototypes_({num_classes, channels, size, size}) {
  AF_CHECK(num_classes >= 2 && channels >= 1 && size >= 4,
           "degenerate vision task");
  // Deterministic per-class sinusoid mixtures: frequency/orientation/phase
  // drawn once from the task seed.
  Pcg32 rng(seed, 0x1111);
  for (std::int64_t k = 0; k < num_classes_; ++k) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float fx = rng.uniform(0.5f, 2.5f);
      const float fy = rng.uniform(0.5f, 2.5f);
      const float phase = rng.uniform(0.0f, 6.28318f);
      const float angle = rng.uniform(0.0f, 3.14159f);
      const float ca = std::cos(angle), sa = std::sin(angle);
      for (std::int64_t y = 0; y < size_; ++y) {
        for (std::int64_t x = 0; x < size_; ++x) {
          const float u = (ca * x - sa * y) / static_cast<float>(size_);
          const float v = (sa * x + ca * y) / static_cast<float>(size_);
          prototypes_.at({k, c, y, x}) =
              std::sin(6.28318f * (fx * u + fy * v) + phase);
        }
      }
    }
  }
}

Tensor VisionTask::sample_image(std::int64_t label, Pcg32& rng) const {
  AF_CHECK(label >= 0 && label < num_classes_, "label out of range");
  Tensor img({channels_, size_, size_});
  const float gain = rng.uniform(0.7f, 1.3f);
  // Random cyclic shift: translation tolerance is what convolution buys.
  const auto dy = static_cast<std::int64_t>(
      rng.next_below(static_cast<std::uint32_t>(size_)));
  const auto dx = static_cast<std::int64_t>(
      rng.next_below(static_cast<std::uint32_t>(size_)));
  for (std::int64_t c = 0; c < channels_; ++c) {
    for (std::int64_t y = 0; y < size_; ++y) {
      for (std::int64_t x = 0; x < size_; ++x) {
        const std::int64_t sy = (y + dy) % size_;
        const std::int64_t sx = (x + dx) % size_;
        img.at({c, y, x}) = gain * prototypes_.at({label, c, sy, sx}) +
                            rng.normal(0.0f, noise_);
      }
    }
  }
  return img;
}

VisionTask::Batch VisionTask::sample_batch(std::int64_t batch,
                                           Pcg32& rng) const {
  Batch out;
  out.images = Tensor({batch, channels_, size_, size_});
  out.labels.reserve(static_cast<std::size_t>(batch));
  const std::int64_t plane = channels_ * size_ * size_;
  for (std::int64_t b = 0; b < batch; ++b) {
    const auto label = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint32_t>(num_classes_)));
    Tensor img = sample_image(label, rng);
    std::copy_n(img.data(), plane, out.images.data() + b * plane);
    out.labels.push_back(label);
  }
  return out;
}

}  // namespace af
