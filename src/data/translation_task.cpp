#include "src/data/translation_task.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace af {

TranslationTask::TranslationTask(std::int64_t vocab, std::int64_t min_len,
                                 std::int64_t max_len, std::uint64_t seed,
                                 float zipf_exponent)
    : vocab_(vocab),
      num_words_(vocab - kFirstWord),
      min_len_(min_len),
      max_len_(max_len) {
  AF_CHECK(num_words_ >= 2, "vocabulary too small for the specials");
  AF_CHECK(min_len >= 1 && min_len <= max_len, "bad length range");
  AF_CHECK(zipf_exponent >= 0.0f, "negative Zipf exponent");
  // Fixed random bijection over the word ids (the "lexicon").
  substitution_.resize(static_cast<std::size_t>(num_words_));
  for (std::int64_t i = 0; i < num_words_; ++i) substitution_[i] = i;
  Pcg32 rng(seed, 0x7ea1);
  rng.shuffle(substitution_);
  // Zipfian CDF: p(rank r) ~ 1 / r^s.
  word_cdf_.resize(static_cast<std::size_t>(num_words_));
  double acc = 0.0;
  for (std::int64_t r = 0; r < num_words_; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1),
                          static_cast<double>(zipf_exponent));
    word_cdf_[static_cast<std::size_t>(r)] = acc;
  }
  for (double& c : word_cdf_) c /= acc;
}

std::int64_t TranslationTask::sample_word(Pcg32& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(word_cdf_.begin(), word_cdf_.end(), u);
  const auto rank = static_cast<std::int64_t>(it - word_cdf_.begin());
  return kFirstWord + std::min(rank, num_words_ - 1);
}

TokenSeq TranslationTask::translate(const TokenSeq& source) const {
  TokenSeq out;
  out.reserve(source.size());
  for (auto it = source.rbegin(); it != source.rend(); ++it) {
    const std::int64_t word = *it - kFirstWord;
    AF_CHECK(word >= 0 && word < num_words_, "source token out of range");
    out.push_back(substitution_[static_cast<std::size_t>(word)] + kFirstWord);
  }
  return out;
}

TranslationPair TranslationTask::sample(Pcg32& rng) const {
  const std::int64_t len =
      min_len_ + static_cast<std::int64_t>(rng.next_below(
                     static_cast<std::uint32_t>(max_len_ - min_len_ + 1)));
  TranslationPair pair;
  pair.source.reserve(static_cast<std::size_t>(len));
  for (std::int64_t i = 0; i < len; ++i) {
    pair.source.push_back(sample_word(rng));
  }
  pair.target = translate(pair.source);
  return pair;
}

std::vector<TranslationPair> TranslationTask::sample_batch(std::int64_t batch,
                                                           Pcg32& rng) const {
  const std::int64_t len =
      min_len_ + static_cast<std::int64_t>(rng.next_below(
                     static_cast<std::uint32_t>(max_len_ - min_len_ + 1)));
  std::vector<TranslationPair> out;
  out.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t b = 0; b < batch; ++b) {
    TranslationPair pair;
    for (std::int64_t i = 0; i < len; ++i) {
      pair.source.push_back(sample_word(rng));
    }
    pair.target = translate(pair.source);
    out.push_back(std::move(pair));
  }
  return out;
}

}  // namespace af
