#include "src/data/speech_task.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace af {

SpeechTask::SpeechTask(std::int64_t vocab, std::int64_t feature_dim,
                       std::int64_t min_len, std::int64_t max_len,
                       std::int64_t frames_per_token, float noise,
                       std::uint64_t seed)
    : vocab_(vocab),
      num_words_(vocab - kFirstWord),
      feature_dim_(feature_dim),
      min_len_(min_len),
      max_len_(max_len),
      frames_per_token_(frames_per_token),
      noise_(noise) {
  AF_CHECK(num_words_ >= 2, "vocabulary too small for the specials");
  AF_CHECK(frames_per_token >= 1, "need at least one frame per token");
  Pcg32 rng(seed, 0x5beec);
  signatures_ =
      Tensor::randn({num_words_ * frames_per_token_, feature_dim_}, rng);
}

Tensor SpeechTask::render(const TokenSeq& transcript, Pcg32& rng) const {
  const auto len = static_cast<std::int64_t>(transcript.size());
  Tensor frames({len * frames_per_token_, feature_dim_});
  const float gain = rng.uniform(0.8f, 1.2f);  // per-utterance "speaker" gain
  for (std::int64_t i = 0; i < len; ++i) {
    const std::int64_t word = transcript[static_cast<std::size_t>(i)] - kFirstWord;
    AF_CHECK(word >= 0 && word < num_words_, "transcript token out of range");
    for (std::int64_t f = 0; f < frames_per_token_; ++f) {
      const float* sig =
          signatures_.data() + (word * frames_per_token_ + f) * feature_dim_;
      float* dst = frames.data() + (i * frames_per_token_ + f) * feature_dim_;
      for (std::int64_t d = 0; d < feature_dim_; ++d) {
        dst[d] = gain * sig[d] + rng.normal(0.0f, noise_);
      }
    }
  }
  return frames;
}

Utterance SpeechTask::sample(Pcg32& rng) const {
  const std::int64_t len =
      min_len_ + static_cast<std::int64_t>(rng.next_below(
                     static_cast<std::uint32_t>(max_len_ - min_len_ + 1)));
  Utterance utt;
  for (std::int64_t i = 0; i < len; ++i) {
    utt.transcript.push_back(
        kFirstWord + static_cast<std::int64_t>(
                         rng.next_below(static_cast<std::uint32_t>(num_words_))));
  }
  utt.frames = render(utt.transcript, rng);
  return utt;
}

SpeechTask::Batch SpeechTask::sample_batch(std::int64_t batch,
                                           Pcg32& rng) const {
  const std::int64_t len =
      min_len_ + static_cast<std::int64_t>(rng.next_below(
                     static_cast<std::uint32_t>(max_len_ - min_len_ + 1)));
  const std::int64_t t_frames = len * frames_per_token_;
  Batch out;
  out.frames = Tensor({t_frames, batch, feature_dim_});
  out.transcripts.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t b = 0; b < batch; ++b) {
    TokenSeq transcript;
    for (std::int64_t i = 0; i < len; ++i) {
      transcript.push_back(
          kFirstWord + static_cast<std::int64_t>(rng.next_below(
                           static_cast<std::uint32_t>(num_words_))));
    }
    Tensor frames = render(transcript, rng);  // [t_frames, F]
    for (std::int64_t t = 0; t < t_frames; ++t) {
      std::copy_n(frames.data() + t * feature_dim_, feature_dim_,
                  out.frames.data() + (t * batch + b) * feature_dim_);
    }
    out.transcripts.push_back(std::move(transcript));
  }
  return out;
}

}  // namespace af
