// Synthetic machine-translation task — the stand-in for WMT'17 En-De.
//
// "Sentences" are random token sequences over a small vocabulary; the
// "translation" reverses the sequence and applies a fixed bijective token
// substitution. Solving it requires exactly the machinery the real task
// exercises — content-dependent attention (reversal) plus a learned lexical
// mapping — while remaining learnable by a small Transformer in seconds.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/metrics.hpp"
#include "src/util/rng.hpp"

namespace af {

/// One source/target pair (no BOS/EOS; the model adds specials).
struct TranslationPair {
  TokenSeq source;
  TokenSeq target;
};

/// Generator for the synthetic translation corpus.
class TranslationTask {
 public:
  static constexpr std::int64_t kPad = 0;
  static constexpr std::int64_t kBos = 1;
  static constexpr std::int64_t kEos = 2;
  static constexpr std::int64_t kFirstWord = 3;

  /// vocab: total vocabulary including the three specials. Tokens are drawn
  /// from a Zipfian distribution with the given exponent (1.0 ~ natural
  /// language). Zipfian frequencies are what give trained NLP models their
  /// heavy-tailed weight distributions — frequent-token embeddings grow
  /// large while rare ones stay near initialization (paper Figure 1).
  TranslationTask(std::int64_t vocab, std::int64_t min_len,
                  std::int64_t max_len, std::uint64_t seed,
                  float zipf_exponent = 1.1f);

  std::int64_t vocab() const { return vocab_; }
  std::int64_t max_len() const { return max_len_; }

  /// Samples one pair.
  TranslationPair sample(Pcg32& rng) const;

  /// Samples a batch with a common source length (so tensors stay dense).
  std::vector<TranslationPair> sample_batch(std::int64_t batch,
                                            Pcg32& rng) const;

  /// The ground-truth translation of an arbitrary source sequence.
  TokenSeq translate(const TokenSeq& source) const;

 private:
  std::int64_t sample_word(Pcg32& rng) const;

  std::int64_t vocab_;
  std::int64_t num_words_;
  std::int64_t min_len_;
  std::int64_t max_len_;
  std::vector<std::int64_t> substitution_;  // word -> word bijection
  std::vector<double> word_cdf_;            // Zipfian cumulative distribution
};

}  // namespace af
