// Task metrics used in the paper's Tables 1-3: BLEU (machine translation),
// word error rate (speech-to-text) and Top-1 accuracy (classification).
#pragma once

#include <cstdint>
#include <vector>

namespace af {

using TokenSeq = std::vector<std::int64_t>;

/// Corpus-level BLEU-4 (Papineni et al., 2002) on token sequences: geometric
/// mean of modified n-gram precisions for n = 1..4 with brevity penalty.
/// Higher-order precisions use add-one smoothing (Lin & Och, 2004) so short
/// synthetic corpora do not zero out. Returns a percentage in [0, 100].
double bleu_score(const std::vector<TokenSeq>& references,
                  const std::vector<TokenSeq>& hypotheses);

/// Word error rate: total Levenshtein edit distance over total reference
/// length, as a percentage (can exceed 100 for degenerate hypotheses).
double word_error_rate(const std::vector<TokenSeq>& references,
                       const std::vector<TokenSeq>& hypotheses);

/// Levenshtein distance between two token sequences.
std::int64_t edit_distance(const TokenSeq& a, const TokenSeq& b);

/// Fraction of correct predictions, as a percentage.
double top1_accuracy(const std::vector<std::int64_t>& labels,
                     const std::vector<std::int64_t>& predictions);

/// Fraction of positions where two prediction vectors disagree, as a
/// percentage — the silent-data-corruption rate of a faulty run measured
/// against its fault-free twin (used by the resilience sweep; unlike
/// accuracy it also counts wrong->different-wrong flips).
double prediction_flip_rate(const std::vector<std::int64_t>& baseline,
                            const std::vector<std::int64_t>& observed);

}  // namespace af
