// Synthetic speech-to-text task — the stand-in for LibriSpeech.
//
// A "recording" is the target token sequence rendered into continuous
// feature frames: every token emits `frames_per_token` frames of a fixed
// per-token acoustic signature corrupted by Gaussian noise (and a random
// per-utterance gain, mimicking speaker variation). The model must learn
// the signature inventory and the alignment — the same structure an
// attention-based ASR model learns, at toy scale.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/metrics.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/rng.hpp"

namespace af {

/// One utterance: frames [T, feature_dim] plus the transcript.
struct Utterance {
  Tensor frames;     // [T, feature_dim]
  TokenSeq transcript;  // word ids, no specials
};

class SpeechTask {
 public:
  static constexpr std::int64_t kPad = 0;
  static constexpr std::int64_t kBos = 1;
  static constexpr std::int64_t kEos = 2;
  static constexpr std::int64_t kFirstWord = 3;

  SpeechTask(std::int64_t vocab, std::int64_t feature_dim,
             std::int64_t min_len, std::int64_t max_len,
             std::int64_t frames_per_token, float noise, std::uint64_t seed);

  std::int64_t vocab() const { return vocab_; }
  std::int64_t feature_dim() const { return feature_dim_; }
  std::int64_t frames_per_token() const { return frames_per_token_; }

  Utterance sample(Pcg32& rng) const;

  /// Batch with a common transcript length; frames stacked as [T, B, F].
  struct Batch {
    Tensor frames;                    // [T, B, F]
    std::vector<TokenSeq> transcripts;
  };
  Batch sample_batch(std::int64_t batch, Pcg32& rng) const;

  /// Renders a transcript into frames (deterministic signatures + noise).
  Tensor render(const TokenSeq& transcript, Pcg32& rng) const;

 private:
  std::int64_t vocab_;
  std::int64_t num_words_;
  std::int64_t feature_dim_;
  std::int64_t min_len_;
  std::int64_t max_len_;
  std::int64_t frames_per_token_;
  float noise_;
  Tensor signatures_;  // [num_words * frames_per_token, feature_dim]
};

}  // namespace af
