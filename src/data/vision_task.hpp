// Synthetic image-classification task — the stand-in for ImageNet.
//
// Each of the `num_classes` classes owns a deterministic spatial "prototype"
// image (a mixture of oriented sinusoids, distinct per class and channel).
// Samples are the prototype under random gain, shift and pixel noise, so the
// CNN must learn translation-tolerant spatial features rather than trivial
// pixel matching.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"
#include "src/util/rng.hpp"

namespace af {

class VisionTask {
 public:
  VisionTask(std::int64_t num_classes, std::int64_t channels,
             std::int64_t size, float noise, std::uint64_t seed);

  std::int64_t num_classes() const { return num_classes_; }
  std::int64_t channels() const { return channels_; }
  std::int64_t size() const { return size_; }

  /// One image [C, H, W] of the given class.
  Tensor sample_image(std::int64_t label, Pcg32& rng) const;

  /// A labelled batch: images [N, C, H, W] and labels (uniform classes).
  struct Batch {
    Tensor images;
    std::vector<std::int64_t> labels;
  };
  Batch sample_batch(std::int64_t batch, Pcg32& rng) const;

 private:
  std::int64_t num_classes_;
  std::int64_t channels_;
  std::int64_t size_;
  float noise_;
  Tensor prototypes_;  // [num_classes, C, H, W]
};

}  // namespace af
