#include "src/data/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/util/fault.hpp"

namespace af {
namespace {

// Counts of all n-grams of order n in a sequence.
std::map<std::vector<std::int64_t>, std::int64_t> ngram_counts(
    const TokenSeq& seq, std::size_t n) {
  std::map<std::vector<std::int64_t>, std::int64_t> counts;
  if (seq.size() < n) return counts;
  for (std::size_t i = 0; i + n <= seq.size(); ++i) {
    counts[std::vector<std::int64_t>(seq.begin() + static_cast<std::ptrdiff_t>(i),
                                     seq.begin() + static_cast<std::ptrdiff_t>(i + n))]++;
  }
  return counts;
}

}  // namespace

double bleu_score(const std::vector<TokenSeq>& references,
                  const std::vector<TokenSeq>& hypotheses) {
  // Corpus-shape violations are malformed *input*, not programmer error: a
  // harness fed a truncated or misaligned evaluation set should be able to
  // catch this, report the corpus as bad, and move on to the next one.
  if (references.size() != hypotheses.size()) {
    throw FaultError("metrics:bleu", FaultKind::kMalformedInput,
                     "corpus mismatch: " + std::to_string(references.size()) +
                         " references vs " + std::to_string(hypotheses.size()) +
                         " hypotheses");
  }
  if (references.empty()) {
    throw FaultError("metrics:bleu", FaultKind::kMalformedInput,
                     "empty corpus");
  }

  double log_precision_sum = 0.0;
  for (std::size_t n = 1; n <= 4; ++n) {
    std::int64_t matched = 0, total = 0;
    for (std::size_t s = 0; s < references.size(); ++s) {
      auto ref_counts = ngram_counts(references[s], n);
      auto hyp_counts = ngram_counts(hypotheses[s], n);
      for (const auto& [gram, count] : hyp_counts) {
        total += count;
        auto it = ref_counts.find(gram);
        if (it != ref_counts.end()) {
          matched += std::min(count, it->second);
        }
      }
    }
    double precision;
    if (n == 1) {
      if (total == 0) return 0.0;  // empty hypotheses
      if (matched == 0) return 0.0;
      precision = static_cast<double>(matched) / static_cast<double>(total);
    } else {
      // Add-one smoothing for the higher orders.
      precision = (static_cast<double>(matched) + 1.0) /
                  (static_cast<double>(total) + 1.0);
    }
    log_precision_sum += std::log(precision);
  }

  std::int64_t ref_len = 0, hyp_len = 0;
  for (std::size_t s = 0; s < references.size(); ++s) {
    ref_len += static_cast<std::int64_t>(references[s].size());
    hyp_len += static_cast<std::int64_t>(hypotheses[s].size());
  }
  double brevity = 1.0;
  if (hyp_len < ref_len && hyp_len > 0) {
    brevity = std::exp(1.0 - static_cast<double>(ref_len) /
                                 static_cast<double>(hyp_len));
  }
  return 100.0 * brevity * std::exp(log_precision_sum / 4.0);
}

std::int64_t edit_distance(const TokenSeq& a, const TokenSeq& b) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::int64_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<std::int64_t>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<std::int64_t>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const std::int64_t sub = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double word_error_rate(const std::vector<TokenSeq>& references,
                       const std::vector<TokenSeq>& hypotheses) {
  if (references.size() != hypotheses.size()) {
    throw FaultError("metrics:wer", FaultKind::kMalformedInput,
                     "corpus mismatch: " + std::to_string(references.size()) +
                         " references vs " + std::to_string(hypotheses.size()) +
                         " hypotheses");
  }
  std::int64_t errors = 0, ref_len = 0;
  for (std::size_t s = 0; s < references.size(); ++s) {
    errors += edit_distance(references[s], hypotheses[s]);
    ref_len += static_cast<std::int64_t>(references[s].size());
  }
  if (ref_len <= 0) {
    throw FaultError("metrics:wer", FaultKind::kMalformedInput,
                     "references contain no tokens");
  }
  return 100.0 * static_cast<double>(errors) / static_cast<double>(ref_len);
}

double top1_accuracy(const std::vector<std::int64_t>& labels,
                     const std::vector<std::int64_t>& predictions) {
  if (labels.size() != predictions.size() || labels.empty()) {
    throw FaultError("metrics:top1", FaultKind::kMalformedInput,
                     "label/prediction lists must match and be non-empty (" +
                         std::to_string(labels.size()) + " vs " +
                         std::to_string(predictions.size()) + ")");
  }
  std::int64_t hit = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    hit += (labels[i] == predictions[i]);
  }
  return 100.0 * static_cast<double>(hit) / static_cast<double>(labels.size());
}

double prediction_flip_rate(const std::vector<std::int64_t>& baseline,
                            const std::vector<std::int64_t>& observed) {
  if (baseline.size() != observed.size() || baseline.empty()) {
    throw FaultError("metrics:flip-rate", FaultKind::kMalformedInput,
                     "prediction lists must match and be non-empty (" +
                         std::to_string(baseline.size()) + " vs " +
                         std::to_string(observed.size()) + ")");
  }
  std::int64_t flips = 0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    flips += (baseline[i] != observed[i]);
  }
  return 100.0 * static_cast<double>(flips) /
         static_cast<double>(baseline.size());
}

}  // namespace af
