# Empty dependencies file for fig4_ordering_test.
# This may be replaced when dependencies are built.
