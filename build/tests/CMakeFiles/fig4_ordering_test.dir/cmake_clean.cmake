file(REMOVE_RECURSE
  "CMakeFiles/fig4_ordering_test.dir/fig4_ordering_test.cpp.o"
  "CMakeFiles/fig4_ordering_test.dir/fig4_ordering_test.cpp.o.d"
  "fig4_ordering_test"
  "fig4_ordering_test.pdb"
  "fig4_ordering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
