# Empty dependencies file for conv_param_sweep_test.
# This may be replaced when dependencies are built.
