file(REMOVE_RECURSE
  "CMakeFiles/conv_param_sweep_test.dir/conv_param_sweep_test.cpp.o"
  "CMakeFiles/conv_param_sweep_test.dir/conv_param_sweep_test.cpp.o.d"
  "conv_param_sweep_test"
  "conv_param_sweep_test.pdb"
  "conv_param_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_param_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
