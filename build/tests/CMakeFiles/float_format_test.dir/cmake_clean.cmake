file(REMOVE_RECURSE
  "CMakeFiles/float_format_test.dir/float_format_test.cpp.o"
  "CMakeFiles/float_format_test.dir/float_format_test.cpp.o.d"
  "float_format_test"
  "float_format_test.pdb"
  "float_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
