# Empty dependencies file for float_format_test.
# This may be replaced when dependencies are built.
