# Empty dependencies file for model_gradcheck_test.
# This may be replaced when dependencies are built.
