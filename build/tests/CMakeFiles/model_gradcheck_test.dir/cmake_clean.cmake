file(REMOVE_RECURSE
  "CMakeFiles/model_gradcheck_test.dir/model_gradcheck_test.cpp.o"
  "CMakeFiles/model_gradcheck_test.dir/model_gradcheck_test.cpp.o.d"
  "model_gradcheck_test"
  "model_gradcheck_test.pdb"
  "model_gradcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
