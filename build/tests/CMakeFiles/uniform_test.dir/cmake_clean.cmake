file(REMOVE_RECURSE
  "CMakeFiles/uniform_test.dir/uniform_test.cpp.o"
  "CMakeFiles/uniform_test.dir/uniform_test.cpp.o.d"
  "uniform_test"
  "uniform_test.pdb"
  "uniform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
