file(REMOVE_RECURSE
  "CMakeFiles/hw_accelerator_test.dir/hw_accelerator_test.cpp.o"
  "CMakeFiles/hw_accelerator_test.dir/hw_accelerator_test.cpp.o.d"
  "hw_accelerator_test"
  "hw_accelerator_test.pdb"
  "hw_accelerator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_accelerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
