# Empty dependencies file for beam_search_test.
# This may be replaced when dependencies are built.
