file(REMOVE_RECURSE
  "CMakeFiles/beam_search_test.dir/beam_search_test.cpp.o"
  "CMakeFiles/beam_search_test.dir/beam_search_test.cpp.o.d"
  "beam_search_test"
  "beam_search_test.pdb"
  "beam_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
