file(REMOVE_RECURSE
  "CMakeFiles/bitpack_test.dir/bitpack_test.cpp.o"
  "CMakeFiles/bitpack_test.dir/bitpack_test.cpp.o.d"
  "bitpack_test"
  "bitpack_test.pdb"
  "bitpack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitpack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
