# Empty dependencies file for bitpack_test.
# This may be replaced when dependencies are built.
