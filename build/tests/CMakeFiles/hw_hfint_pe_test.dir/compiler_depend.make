# Empty compiler generated dependencies file for hw_hfint_pe_test.
# This may be replaced when dependencies are built.
