file(REMOVE_RECURSE
  "CMakeFiles/hw_hfint_pe_test.dir/hw_hfint_pe_test.cpp.o"
  "CMakeFiles/hw_hfint_pe_test.dir/hw_hfint_pe_test.cpp.o.d"
  "hw_hfint_pe_test"
  "hw_hfint_pe_test.pdb"
  "hw_hfint_pe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_hfint_pe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
