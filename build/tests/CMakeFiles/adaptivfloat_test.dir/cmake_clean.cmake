file(REMOVE_RECURSE
  "CMakeFiles/adaptivfloat_test.dir/adaptivfloat_test.cpp.o"
  "CMakeFiles/adaptivfloat_test.dir/adaptivfloat_test.cpp.o.d"
  "adaptivfloat_test"
  "adaptivfloat_test.pdb"
  "adaptivfloat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptivfloat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
