# Empty compiler generated dependencies file for adaptivfloat_test.
# This may be replaced when dependencies are built.
