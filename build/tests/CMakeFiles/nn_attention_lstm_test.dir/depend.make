# Empty dependencies file for nn_attention_lstm_test.
# This may be replaced when dependencies are built.
