file(REMOVE_RECURSE
  "CMakeFiles/nn_attention_lstm_test.dir/nn_attention_lstm_test.cpp.o"
  "CMakeFiles/nn_attention_lstm_test.dir/nn_attention_lstm_test.cpp.o.d"
  "nn_attention_lstm_test"
  "nn_attention_lstm_test.pdb"
  "nn_attention_lstm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_attention_lstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
