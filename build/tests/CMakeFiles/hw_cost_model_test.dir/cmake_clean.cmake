file(REMOVE_RECURSE
  "CMakeFiles/hw_cost_model_test.dir/hw_cost_model_test.cpp.o"
  "CMakeFiles/hw_cost_model_test.dir/hw_cost_model_test.cpp.o.d"
  "hw_cost_model_test"
  "hw_cost_model_test.pdb"
  "hw_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
