# Empty compiler generated dependencies file for hw_cost_model_test.
# This may be replaced when dependencies are built.
