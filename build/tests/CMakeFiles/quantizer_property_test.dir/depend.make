# Empty dependencies file for quantizer_property_test.
# This may be replaced when dependencies are built.
