file(REMOVE_RECURSE
  "CMakeFiles/quantizer_property_test.dir/quantizer_property_test.cpp.o"
  "CMakeFiles/quantizer_property_test.dir/quantizer_property_test.cpp.o.d"
  "quantizer_property_test"
  "quantizer_property_test.pdb"
  "quantizer_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantizer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
