# Empty compiler generated dependencies file for block_float_test.
# This may be replaced when dependencies are built.
