file(REMOVE_RECURSE
  "CMakeFiles/block_float_test.dir/block_float_test.cpp.o"
  "CMakeFiles/block_float_test.dir/block_float_test.cpp.o.d"
  "block_float_test"
  "block_float_test.pdb"
  "block_float_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_float_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
