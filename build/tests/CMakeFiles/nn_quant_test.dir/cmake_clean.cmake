file(REMOVE_RECURSE
  "CMakeFiles/nn_quant_test.dir/nn_quant_test.cpp.o"
  "CMakeFiles/nn_quant_test.dir/nn_quant_test.cpp.o.d"
  "nn_quant_test"
  "nn_quant_test.pdb"
  "nn_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
