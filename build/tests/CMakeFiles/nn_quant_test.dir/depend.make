# Empty dependencies file for nn_quant_test.
# This may be replaced when dependencies are built.
