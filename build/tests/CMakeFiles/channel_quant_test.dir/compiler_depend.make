# Empty compiler generated dependencies file for channel_quant_test.
# This may be replaced when dependencies are built.
