file(REMOVE_RECURSE
  "CMakeFiles/channel_quant_test.dir/channel_quant_test.cpp.o"
  "CMakeFiles/channel_quant_test.dir/channel_quant_test.cpp.o.d"
  "channel_quant_test"
  "channel_quant_test.pdb"
  "channel_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
