# Empty dependencies file for hw_fc_workload_test.
# This may be replaced when dependencies are built.
