file(REMOVE_RECURSE
  "CMakeFiles/hw_fc_workload_test.dir/hw_fc_workload_test.cpp.o"
  "CMakeFiles/hw_fc_workload_test.dir/hw_fc_workload_test.cpp.o.d"
  "hw_fc_workload_test"
  "hw_fc_workload_test.pdb"
  "hw_fc_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_fc_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
