# Empty dependencies file for posit_test.
# This may be replaced when dependencies are built.
