file(REMOVE_RECURSE
  "CMakeFiles/posit_test.dir/posit_test.cpp.o"
  "CMakeFiles/posit_test.dir/posit_test.cpp.o.d"
  "posit_test"
  "posit_test.pdb"
  "posit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
