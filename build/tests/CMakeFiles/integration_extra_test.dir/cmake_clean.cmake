file(REMOVE_RECURSE
  "CMakeFiles/integration_extra_test.dir/integration_extra_test.cpp.o"
  "CMakeFiles/integration_extra_test.dir/integration_extra_test.cpp.o.d"
  "integration_extra_test"
  "integration_extra_test.pdb"
  "integration_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
