# Empty dependencies file for integration_extra_test.
# This may be replaced when dependencies are built.
