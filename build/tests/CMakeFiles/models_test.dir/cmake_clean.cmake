file(REMOVE_RECURSE
  "CMakeFiles/models_test.dir/models_test.cpp.o"
  "CMakeFiles/models_test.dir/models_test.cpp.o.d"
  "models_test"
  "models_test.pdb"
  "models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
