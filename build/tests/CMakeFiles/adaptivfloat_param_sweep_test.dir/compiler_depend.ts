# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for adaptivfloat_param_sweep_test.
