# Empty dependencies file for adaptivfloat_param_sweep_test.
# This may be replaced when dependencies are built.
