file(REMOVE_RECURSE
  "CMakeFiles/adaptivfloat_param_sweep_test.dir/adaptivfloat_param_sweep_test.cpp.o"
  "CMakeFiles/adaptivfloat_param_sweep_test.dir/adaptivfloat_param_sweep_test.cpp.o.d"
  "adaptivfloat_param_sweep_test"
  "adaptivfloat_param_sweep_test.pdb"
  "adaptivfloat_param_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptivfloat_param_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
