# Empty dependencies file for hw_int_pe_test.
# This may be replaced when dependencies are built.
