file(REMOVE_RECURSE
  "CMakeFiles/nn_property_test.dir/nn_property_test.cpp.o"
  "CMakeFiles/nn_property_test.dir/nn_property_test.cpp.o.d"
  "nn_property_test"
  "nn_property_test.pdb"
  "nn_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
