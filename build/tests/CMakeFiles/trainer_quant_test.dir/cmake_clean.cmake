file(REMOVE_RECURSE
  "CMakeFiles/trainer_quant_test.dir/trainer_quant_test.cpp.o"
  "CMakeFiles/trainer_quant_test.dir/trainer_quant_test.cpp.o.d"
  "trainer_quant_test"
  "trainer_quant_test.pdb"
  "trainer_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
