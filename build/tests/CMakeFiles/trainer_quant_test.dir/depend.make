# Empty dependencies file for trainer_quant_test.
# This may be replaced when dependencies are built.
