file(REMOVE_RECURSE
  "CMakeFiles/table4_accelerator_ppa.dir/table4_accelerator_ppa.cpp.o"
  "CMakeFiles/table4_accelerator_ppa.dir/table4_accelerator_ppa.cpp.o.d"
  "table4_accelerator_ppa"
  "table4_accelerator_ppa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_accelerator_ppa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
