# Empty dependencies file for table4_accelerator_ppa.
# This may be replaced when dependencies are built.
