# Empty dependencies file for fig3_quantization_example.
# This may be replaced when dependencies are built.
