file(REMOVE_RECURSE
  "CMakeFiles/fig3_quantization_example.dir/fig3_quantization_example.cpp.o"
  "CMakeFiles/fig3_quantization_example.dir/fig3_quantization_example.cpp.o.d"
  "fig3_quantization_example"
  "fig3_quantization_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_quantization_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
