file(REMOVE_RECURSE
  "CMakeFiles/ablation_accelerator_sweep.dir/ablation_accelerator_sweep.cpp.o"
  "CMakeFiles/ablation_accelerator_sweep.dir/ablation_accelerator_sweep.cpp.o.d"
  "ablation_accelerator_sweep"
  "ablation_accelerator_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accelerator_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
