# Empty compiler generated dependencies file for ablation_accelerator_sweep.
# This may be replaced when dependencies are built.
