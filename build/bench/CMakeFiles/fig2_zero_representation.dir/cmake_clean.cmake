file(REMOVE_RECURSE
  "CMakeFiles/fig2_zero_representation.dir/fig2_zero_representation.cpp.o"
  "CMakeFiles/fig2_zero_representation.dir/fig2_zero_representation.cpp.o.d"
  "fig2_zero_representation"
  "fig2_zero_representation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_zero_representation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
