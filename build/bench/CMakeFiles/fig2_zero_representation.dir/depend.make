# Empty dependencies file for fig2_zero_representation.
# This may be replaced when dependencies are built.
