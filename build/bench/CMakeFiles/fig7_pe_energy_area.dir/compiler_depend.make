# Empty compiler generated dependencies file for fig7_pe_energy_area.
# This may be replaced when dependencies are built.
