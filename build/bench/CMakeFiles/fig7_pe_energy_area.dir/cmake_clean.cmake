file(REMOVE_RECURSE
  "CMakeFiles/fig7_pe_energy_area.dir/fig7_pe_energy_area.cpp.o"
  "CMakeFiles/fig7_pe_energy_area.dir/fig7_pe_energy_area.cpp.o.d"
  "fig7_pe_energy_area"
  "fig7_pe_energy_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pe_energy_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
