# Empty dependencies file for fig1_weight_ranges.
# This may be replaced when dependencies are built.
