file(REMOVE_RECURSE
  "CMakeFiles/fig1_weight_ranges.dir/fig1_weight_ranges.cpp.o"
  "CMakeFiles/fig1_weight_ranges.dir/fig1_weight_ranges.cpp.o.d"
  "fig1_weight_ranges"
  "fig1_weight_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_weight_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
