file(REMOVE_RECURSE
  "CMakeFiles/ablation_exponent_bits.dir/ablation_exponent_bits.cpp.o"
  "CMakeFiles/ablation_exponent_bits.dir/ablation_exponent_bits.cpp.o.d"
  "ablation_exponent_bits"
  "ablation_exponent_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exponent_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
