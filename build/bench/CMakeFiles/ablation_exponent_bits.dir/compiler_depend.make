# Empty compiler generated dependencies file for ablation_exponent_bits.
# This may be replaced when dependencies are built.
