file(REMOVE_RECURSE
  "CMakeFiles/micro_quantizers.dir/micro_quantizers.cpp.o"
  "CMakeFiles/micro_quantizers.dir/micro_quantizers.cpp.o.d"
  "micro_quantizers"
  "micro_quantizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_quantizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
