# Empty compiler generated dependencies file for micro_quantizers.
# This may be replaced when dependencies are built.
