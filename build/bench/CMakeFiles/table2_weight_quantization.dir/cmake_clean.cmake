file(REMOVE_RECURSE
  "CMakeFiles/table2_weight_quantization.dir/table2_weight_quantization.cpp.o"
  "CMakeFiles/table2_weight_quantization.dir/table2_weight_quantization.cpp.o.d"
  "table2_weight_quantization"
  "table2_weight_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_weight_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
