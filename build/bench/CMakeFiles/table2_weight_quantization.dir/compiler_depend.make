# Empty compiler generated dependencies file for table2_weight_quantization.
# This may be replaced when dependencies are built.
