file(REMOVE_RECURSE
  "CMakeFiles/fig4_rms_error.dir/fig4_rms_error.cpp.o"
  "CMakeFiles/fig4_rms_error.dir/fig4_rms_error.cpp.o.d"
  "fig4_rms_error"
  "fig4_rms_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rms_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
