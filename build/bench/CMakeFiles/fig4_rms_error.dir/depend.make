# Empty dependencies file for fig4_rms_error.
# This may be replaced when dependencies are built.
