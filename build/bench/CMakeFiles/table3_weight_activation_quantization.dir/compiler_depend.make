# Empty compiler generated dependencies file for table3_weight_activation_quantization.
# This may be replaced when dependencies are built.
