file(REMOVE_RECURSE
  "CMakeFiles/table3_weight_activation_quantization.dir/table3_weight_activation_quantization.cpp.o"
  "CMakeFiles/table3_weight_activation_quantization.dir/table3_weight_activation_quantization.cpp.o.d"
  "table3_weight_activation_quantization"
  "table3_weight_activation_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_weight_activation_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
