file(REMOVE_RECURSE
  "libaf_hw.a"
)
