file(REMOVE_RECURSE
  "CMakeFiles/af_hw.dir/accelerator.cpp.o"
  "CMakeFiles/af_hw.dir/accelerator.cpp.o.d"
  "CMakeFiles/af_hw.dir/activation_unit.cpp.o"
  "CMakeFiles/af_hw.dir/activation_unit.cpp.o.d"
  "CMakeFiles/af_hw.dir/cost_model.cpp.o"
  "CMakeFiles/af_hw.dir/cost_model.cpp.o.d"
  "CMakeFiles/af_hw.dir/hfint_pe.cpp.o"
  "CMakeFiles/af_hw.dir/hfint_pe.cpp.o.d"
  "CMakeFiles/af_hw.dir/int_pe.cpp.o"
  "CMakeFiles/af_hw.dir/int_pe.cpp.o.d"
  "libaf_hw.a"
  "libaf_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
