
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accelerator.cpp" "src/hw/CMakeFiles/af_hw.dir/accelerator.cpp.o" "gcc" "src/hw/CMakeFiles/af_hw.dir/accelerator.cpp.o.d"
  "/root/repo/src/hw/activation_unit.cpp" "src/hw/CMakeFiles/af_hw.dir/activation_unit.cpp.o" "gcc" "src/hw/CMakeFiles/af_hw.dir/activation_unit.cpp.o.d"
  "/root/repo/src/hw/cost_model.cpp" "src/hw/CMakeFiles/af_hw.dir/cost_model.cpp.o" "gcc" "src/hw/CMakeFiles/af_hw.dir/cost_model.cpp.o.d"
  "/root/repo/src/hw/hfint_pe.cpp" "src/hw/CMakeFiles/af_hw.dir/hfint_pe.cpp.o" "gcc" "src/hw/CMakeFiles/af_hw.dir/hfint_pe.cpp.o.d"
  "/root/repo/src/hw/int_pe.cpp" "src/hw/CMakeFiles/af_hw.dir/int_pe.cpp.o" "gcc" "src/hw/CMakeFiles/af_hw.dir/int_pe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/af_core.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/af_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
