# Empty dependencies file for af_hw.
# This may be replaced when dependencies are built.
