# Empty compiler generated dependencies file for af_models.
# This may be replaced when dependencies are built.
