file(REMOVE_RECURSE
  "libaf_models.a"
)
