file(REMOVE_RECURSE
  "CMakeFiles/af_models.dir/beam_search.cpp.o"
  "CMakeFiles/af_models.dir/beam_search.cpp.o.d"
  "CMakeFiles/af_models.dir/resnet.cpp.o"
  "CMakeFiles/af_models.dir/resnet.cpp.o.d"
  "CMakeFiles/af_models.dir/seq2seq.cpp.o"
  "CMakeFiles/af_models.dir/seq2seq.cpp.o.d"
  "CMakeFiles/af_models.dir/trainer.cpp.o"
  "CMakeFiles/af_models.dir/trainer.cpp.o.d"
  "CMakeFiles/af_models.dir/transformer.cpp.o"
  "CMakeFiles/af_models.dir/transformer.cpp.o.d"
  "libaf_models.a"
  "libaf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
