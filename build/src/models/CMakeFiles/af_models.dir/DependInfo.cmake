
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/beam_search.cpp" "src/models/CMakeFiles/af_models.dir/beam_search.cpp.o" "gcc" "src/models/CMakeFiles/af_models.dir/beam_search.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/models/CMakeFiles/af_models.dir/resnet.cpp.o" "gcc" "src/models/CMakeFiles/af_models.dir/resnet.cpp.o.d"
  "/root/repo/src/models/seq2seq.cpp" "src/models/CMakeFiles/af_models.dir/seq2seq.cpp.o" "gcc" "src/models/CMakeFiles/af_models.dir/seq2seq.cpp.o.d"
  "/root/repo/src/models/trainer.cpp" "src/models/CMakeFiles/af_models.dir/trainer.cpp.o" "gcc" "src/models/CMakeFiles/af_models.dir/trainer.cpp.o.d"
  "/root/repo/src/models/transformer.cpp" "src/models/CMakeFiles/af_models.dir/transformer.cpp.o" "gcc" "src/models/CMakeFiles/af_models.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/af_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/af_data.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/af_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/af_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
