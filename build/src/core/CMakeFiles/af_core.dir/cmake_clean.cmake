file(REMOVE_RECURSE
  "CMakeFiles/af_core.dir/adaptivfloat.cpp.o"
  "CMakeFiles/af_core.dir/adaptivfloat.cpp.o.d"
  "CMakeFiles/af_core.dir/algorithm1.cpp.o"
  "CMakeFiles/af_core.dir/algorithm1.cpp.o.d"
  "CMakeFiles/af_core.dir/bitpack.cpp.o"
  "CMakeFiles/af_core.dir/bitpack.cpp.o.d"
  "CMakeFiles/af_core.dir/channel_quant.cpp.o"
  "CMakeFiles/af_core.dir/channel_quant.cpp.o.d"
  "libaf_core.a"
  "libaf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
