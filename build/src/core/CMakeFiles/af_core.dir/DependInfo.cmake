
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptivfloat.cpp" "src/core/CMakeFiles/af_core.dir/adaptivfloat.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/adaptivfloat.cpp.o.d"
  "/root/repo/src/core/algorithm1.cpp" "src/core/CMakeFiles/af_core.dir/algorithm1.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/algorithm1.cpp.o.d"
  "/root/repo/src/core/bitpack.cpp" "src/core/CMakeFiles/af_core.dir/bitpack.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/bitpack.cpp.o.d"
  "/root/repo/src/core/channel_quant.cpp" "src/core/CMakeFiles/af_core.dir/channel_quant.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/channel_quant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
