file(REMOVE_RECURSE
  "libaf_tensor.a"
)
