file(REMOVE_RECURSE
  "CMakeFiles/af_tensor.dir/ops.cpp.o"
  "CMakeFiles/af_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/af_tensor.dir/tensor.cpp.o"
  "CMakeFiles/af_tensor.dir/tensor.cpp.o.d"
  "libaf_tensor.a"
  "libaf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
