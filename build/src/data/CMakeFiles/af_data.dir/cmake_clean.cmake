file(REMOVE_RECURSE
  "CMakeFiles/af_data.dir/metrics.cpp.o"
  "CMakeFiles/af_data.dir/metrics.cpp.o.d"
  "CMakeFiles/af_data.dir/speech_task.cpp.o"
  "CMakeFiles/af_data.dir/speech_task.cpp.o.d"
  "CMakeFiles/af_data.dir/translation_task.cpp.o"
  "CMakeFiles/af_data.dir/translation_task.cpp.o.d"
  "CMakeFiles/af_data.dir/vision_task.cpp.o"
  "CMakeFiles/af_data.dir/vision_task.cpp.o.d"
  "CMakeFiles/af_data.dir/weight_ensembles.cpp.o"
  "CMakeFiles/af_data.dir/weight_ensembles.cpp.o.d"
  "libaf_data.a"
  "libaf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
