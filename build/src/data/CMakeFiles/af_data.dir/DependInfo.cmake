
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/metrics.cpp" "src/data/CMakeFiles/af_data.dir/metrics.cpp.o" "gcc" "src/data/CMakeFiles/af_data.dir/metrics.cpp.o.d"
  "/root/repo/src/data/speech_task.cpp" "src/data/CMakeFiles/af_data.dir/speech_task.cpp.o" "gcc" "src/data/CMakeFiles/af_data.dir/speech_task.cpp.o.d"
  "/root/repo/src/data/translation_task.cpp" "src/data/CMakeFiles/af_data.dir/translation_task.cpp.o" "gcc" "src/data/CMakeFiles/af_data.dir/translation_task.cpp.o.d"
  "/root/repo/src/data/vision_task.cpp" "src/data/CMakeFiles/af_data.dir/vision_task.cpp.o" "gcc" "src/data/CMakeFiles/af_data.dir/vision_task.cpp.o.d"
  "/root/repo/src/data/weight_ensembles.cpp" "src/data/CMakeFiles/af_data.dir/weight_ensembles.cpp.o" "gcc" "src/data/CMakeFiles/af_data.dir/weight_ensembles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
