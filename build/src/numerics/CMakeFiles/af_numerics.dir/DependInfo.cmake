
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/block_float.cpp" "src/numerics/CMakeFiles/af_numerics.dir/block_float.cpp.o" "gcc" "src/numerics/CMakeFiles/af_numerics.dir/block_float.cpp.o.d"
  "/root/repo/src/numerics/float_format.cpp" "src/numerics/CMakeFiles/af_numerics.dir/float_format.cpp.o" "gcc" "src/numerics/CMakeFiles/af_numerics.dir/float_format.cpp.o.d"
  "/root/repo/src/numerics/posit.cpp" "src/numerics/CMakeFiles/af_numerics.dir/posit.cpp.o" "gcc" "src/numerics/CMakeFiles/af_numerics.dir/posit.cpp.o.d"
  "/root/repo/src/numerics/quantizer.cpp" "src/numerics/CMakeFiles/af_numerics.dir/quantizer.cpp.o" "gcc" "src/numerics/CMakeFiles/af_numerics.dir/quantizer.cpp.o.d"
  "/root/repo/src/numerics/registry.cpp" "src/numerics/CMakeFiles/af_numerics.dir/registry.cpp.o" "gcc" "src/numerics/CMakeFiles/af_numerics.dir/registry.cpp.o.d"
  "/root/repo/src/numerics/uniform.cpp" "src/numerics/CMakeFiles/af_numerics.dir/uniform.cpp.o" "gcc" "src/numerics/CMakeFiles/af_numerics.dir/uniform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/af_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
