file(REMOVE_RECURSE
  "CMakeFiles/af_numerics.dir/block_float.cpp.o"
  "CMakeFiles/af_numerics.dir/block_float.cpp.o.d"
  "CMakeFiles/af_numerics.dir/float_format.cpp.o"
  "CMakeFiles/af_numerics.dir/float_format.cpp.o.d"
  "CMakeFiles/af_numerics.dir/posit.cpp.o"
  "CMakeFiles/af_numerics.dir/posit.cpp.o.d"
  "CMakeFiles/af_numerics.dir/quantizer.cpp.o"
  "CMakeFiles/af_numerics.dir/quantizer.cpp.o.d"
  "CMakeFiles/af_numerics.dir/registry.cpp.o"
  "CMakeFiles/af_numerics.dir/registry.cpp.o.d"
  "CMakeFiles/af_numerics.dir/uniform.cpp.o"
  "CMakeFiles/af_numerics.dir/uniform.cpp.o.d"
  "libaf_numerics.a"
  "libaf_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
