# Empty compiler generated dependencies file for af_numerics.
# This may be replaced when dependencies are built.
