file(REMOVE_RECURSE
  "libaf_numerics.a"
)
