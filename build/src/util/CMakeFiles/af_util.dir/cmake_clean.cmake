file(REMOVE_RECURSE
  "CMakeFiles/af_util.dir/rng.cpp.o"
  "CMakeFiles/af_util.dir/rng.cpp.o.d"
  "CMakeFiles/af_util.dir/stats.cpp.o"
  "CMakeFiles/af_util.dir/stats.cpp.o.d"
  "CMakeFiles/af_util.dir/table.cpp.o"
  "CMakeFiles/af_util.dir/table.cpp.o.d"
  "libaf_util.a"
  "libaf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
