file(REMOVE_RECURSE
  "libaf_util.a"
)
