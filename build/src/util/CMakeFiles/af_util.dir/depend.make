# Empty dependencies file for af_util.
# This may be replaced when dependencies are built.
