file(REMOVE_RECURSE
  "CMakeFiles/af_nn.dir/activations.cpp.o"
  "CMakeFiles/af_nn.dir/activations.cpp.o.d"
  "CMakeFiles/af_nn.dir/attention.cpp.o"
  "CMakeFiles/af_nn.dir/attention.cpp.o.d"
  "CMakeFiles/af_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/af_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/af_nn.dir/conv2d.cpp.o"
  "CMakeFiles/af_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/af_nn.dir/embedding.cpp.o"
  "CMakeFiles/af_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/af_nn.dir/layernorm.cpp.o"
  "CMakeFiles/af_nn.dir/layernorm.cpp.o.d"
  "CMakeFiles/af_nn.dir/linear.cpp.o"
  "CMakeFiles/af_nn.dir/linear.cpp.o.d"
  "CMakeFiles/af_nn.dir/loss.cpp.o"
  "CMakeFiles/af_nn.dir/loss.cpp.o.d"
  "CMakeFiles/af_nn.dir/lstm.cpp.o"
  "CMakeFiles/af_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/af_nn.dir/module.cpp.o"
  "CMakeFiles/af_nn.dir/module.cpp.o.d"
  "CMakeFiles/af_nn.dir/optimizer.cpp.o"
  "CMakeFiles/af_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/af_nn.dir/pruning.cpp.o"
  "CMakeFiles/af_nn.dir/pruning.cpp.o.d"
  "CMakeFiles/af_nn.dir/quant.cpp.o"
  "CMakeFiles/af_nn.dir/quant.cpp.o.d"
  "CMakeFiles/af_nn.dir/quantized_linear.cpp.o"
  "CMakeFiles/af_nn.dir/quantized_linear.cpp.o.d"
  "CMakeFiles/af_nn.dir/serialize.cpp.o"
  "CMakeFiles/af_nn.dir/serialize.cpp.o.d"
  "libaf_nn.a"
  "libaf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
