file(REMOVE_RECURSE
  "libaf_nn.a"
)
