
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/af_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/af_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/af_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/af_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/af_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/nn/CMakeFiles/af_nn.dir/layernorm.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/layernorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/af_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/af_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/af_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/af_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/af_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pruning.cpp" "src/nn/CMakeFiles/af_nn.dir/pruning.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/pruning.cpp.o.d"
  "/root/repo/src/nn/quant.cpp" "src/nn/CMakeFiles/af_nn.dir/quant.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/quant.cpp.o.d"
  "/root/repo/src/nn/quantized_linear.cpp" "src/nn/CMakeFiles/af_nn.dir/quantized_linear.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/quantized_linear.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/af_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/af_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/af_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/af_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/af_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/af_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
