file(REMOVE_RECURSE
  "CMakeFiles/hfint_pe_gemv.dir/hfint_pe_gemv.cpp.o"
  "CMakeFiles/hfint_pe_gemv.dir/hfint_pe_gemv.cpp.o.d"
  "hfint_pe_gemv"
  "hfint_pe_gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfint_pe_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
