# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hfint_pe_gemv.
