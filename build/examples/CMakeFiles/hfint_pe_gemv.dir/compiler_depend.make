# Empty compiler generated dependencies file for hfint_pe_gemv.
# This may be replaced when dependencies are built.
