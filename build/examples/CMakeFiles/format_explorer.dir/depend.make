# Empty dependencies file for format_explorer.
# This may be replaced when dependencies are built.
