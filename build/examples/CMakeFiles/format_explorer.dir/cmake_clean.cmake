file(REMOVE_RECURSE
  "CMakeFiles/format_explorer.dir/format_explorer.cpp.o"
  "CMakeFiles/format_explorer.dir/format_explorer.cpp.o.d"
  "format_explorer"
  "format_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
