file(REMOVE_RECURSE
  "CMakeFiles/quantize_transformer.dir/quantize_transformer.cpp.o"
  "CMakeFiles/quantize_transformer.dir/quantize_transformer.cpp.o.d"
  "quantize_transformer"
  "quantize_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantize_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
