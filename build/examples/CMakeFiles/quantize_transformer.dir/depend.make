# Empty dependencies file for quantize_transformer.
# This may be replaced when dependencies are built.
