file(REMOVE_RECURSE
  "CMakeFiles/accelerator_mlp.dir/accelerator_mlp.cpp.o"
  "CMakeFiles/accelerator_mlp.dir/accelerator_mlp.cpp.o.d"
  "accelerator_mlp"
  "accelerator_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
