# Empty dependencies file for accelerator_mlp.
# This may be replaced when dependencies are built.
